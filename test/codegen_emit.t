Golden emitted OCaml for three representative kernels, point and
transformed.  These pin the lowering itself: flat column-major buffers,
unsafe accesses exactly where the in-bounds proofs fire, the runtime
re-checks guarding them, and the Env parameter-binding preamble.  Any
intentional change to the emitter shows up here as a reviewable diff
(promote with `dune promote`).

LU, the paper's central example.  The point kernel's accesses are all
proven in bounds, so every element access lowers to unsafe_get/set
guarded by the N >= 1 and declared-shape re-checks up front.

  $ blockc compile lu --emit ocaml
  (* lu_point — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_a = getfa "A" in
    let d_a = getfd "A" in
    let l0_a = d_a.(0) in
    let l1_a = d_a.(2) in
    let t1_a = 1 * (d_a.(1) - d_a.(0) + 1) in
    let s_n = ref (geti "N") in
    if !s_n < 1 then failwith "lu_point: unchecked accesses assume N >= 1";
    if not (d_a.(0) = 1 && d_a.(1) = !s_n && d_a.(2) = 1 && d_a.(3) = !s_n) then failwith "lu_point: A dims differ from the declared shape";
    let lo_k = 1 in
    let hi_k = (!s_n - 1) in
    for i_k = lo_k to hi_k do
      let lo_i = (i_k + 1) in
      let hi_i = !s_n in
      for i_i = lo_i to hi_i do
        Array.unsafe_set a_a ((i_i - l0_a) + ((i_k - l1_a) * t1_a)) ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_k - l1_a) * t1_a))) /. (Array.unsafe_get a_a ((i_k - l0_a) + ((i_k - l1_a) * t1_a))));
      done;
      let lo_j = (i_k + 1) in
      let hi_j = !s_n in
      for i_j = lo_j to hi_j do
        let lo_i = (i_k + 1) in
        let hi_i = !s_n in
        for i_i = lo_i to hi_i do
          Array.unsafe_set a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a)) ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a))) -. ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_k - l1_a) * t1_a))) *. (Array.unsafe_get a_a ((i_k - l0_a) + ((i_j - l1_a) * t1_a)))));
        done;
      done;
    done;
    ()
  
  let () = raise (Blockc_kernel run)

The derived blocked LU: MIN bounds lower to imin, and the strip loop's
accesses keep their proofs.

  $ blockc compile lu --variant transformed --emit ocaml
  (* lu_transformed — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_a = getfa "A" in
    let d_a = getfd "A" in
    let l0_a = d_a.(0) in
    let l1_a = d_a.(2) in
    let t1_a = 1 * (d_a.(1) - d_a.(0) + 1) in
    let s_ks = ref (geti "KS") in
    let s_n = ref (geti "N") in
    if !s_ks < 1 then failwith "lu_transformed: unchecked accesses assume KS >= 1";
    if !s_n < 1 then failwith "lu_transformed: unchecked accesses assume N >= 1";
    if not (d_a.(0) = 1 && d_a.(1) = !s_n && d_a.(2) = 1 && d_a.(3) = !s_n) then failwith "lu_transformed: A dims differ from the declared shape";
    let lo_k = 1 in
    let hi_k = (!s_n - 1) in
    let st_k = !s_ks in
    if st_k = 0 then failwith "DO K: zero step";
    let n_k = (hi_k - lo_k + st_k) / st_k in
    let r_k = ref lo_k in
    for _ = 1 to n_k do
      let i_k = !r_k in
      let lo_kk = i_k in
      let hi_kk = (imin (i_k + (!s_ks - 1)) (!s_n - 1)) in
      for i_kk = lo_kk to hi_kk do
        let lo_i = (i_kk + 1) in
        let hi_i = !s_n in
        for i_i = lo_i to hi_i do
          Array.unsafe_set a_a ((i_i - l0_a) + ((i_kk - l1_a) * t1_a)) ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_kk - l1_a) * t1_a))) /. (Array.unsafe_get a_a ((i_kk - l0_a) + ((i_kk - l1_a) * t1_a))));
        done;
        let lo_j = (i_kk + 1) in
        let hi_j = (imin !s_n ((i_k + !s_ks) + (-1))) in
        for i_j = lo_j to hi_j do
          let lo_i = (i_kk + 1) in
          let hi_i = !s_n in
          for i_i = lo_i to hi_i do
            Array.unsafe_set a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a)) ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a))) -. ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_kk - l1_a) * t1_a))) *. (Array.unsafe_get a_a ((i_kk - l0_a) + ((i_j - l1_a) * t1_a)))));
          done;
        done;
      done;
      let lo_j = (i_k + !s_ks) in
      let hi_j = !s_n in
      for i_j = lo_j to hi_j do
        let lo_i = (i_k + 1) in
        let hi_i = !s_n in
        for i_i = lo_i to hi_i do
          let lo_kk = i_k in
          let hi_kk = (imin (i_i - 1) (imin (i_k + (!s_ks - 1)) (!s_n - 1))) in
          for i_kk = lo_kk to hi_kk do
            Array.unsafe_set a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a)) ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_j - l1_a) * t1_a))) -. ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_kk - l1_a) * t1_a))) *. (Array.unsafe_get a_a ((i_kk - l0_a) + ((i_j - l1_a) * t1_a)))));
          done;
        done;
      done;
      r_k := i_k + st_k;
    done;
    ()
  
  let () = raise (Blockc_kernel run)

Matmul point and its blocked form.

  $ blockc compile matmul --emit ocaml
  (* matmul_point — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_a = getfa "A" in
    let d_a = getfd "A" in
    let l0_a = d_a.(0) in
    let l1_a = d_a.(2) in
    let t1_a = 1 * (d_a.(1) - d_a.(0) + 1) in
    let a_b = getfa "B" in
    let d_b = getfd "B" in
    let l0_b = d_b.(0) in
    let l1_b = d_b.(2) in
    let t1_b = 1 * (d_b.(1) - d_b.(0) + 1) in
    let a_c = getfa "C" in
    let d_c = getfd "C" in
    let l0_c = d_c.(0) in
    let l1_c = d_c.(2) in
    let t1_c = 1 * (d_c.(1) - d_c.(0) + 1) in
    let s_n = ref (geti "N") in
    if !s_n < 1 then failwith "matmul_point: unchecked accesses assume N >= 1";
    if not (d_a.(0) = 1 && d_a.(1) = !s_n && d_a.(2) = 1 && d_a.(3) = !s_n) then failwith "matmul_point: A dims differ from the declared shape";
    if not (d_b.(0) = 1 && d_b.(1) = !s_n && d_b.(2) = 1 && d_b.(3) = !s_n) then failwith "matmul_point: B dims differ from the declared shape";
    if not (d_c.(0) = 1 && d_c.(1) = !s_n && d_c.(2) = 1 && d_c.(3) = !s_n) then failwith "matmul_point: C dims differ from the declared shape";
    let lo_j = 1 in
    let hi_j = !s_n in
    for i_j = lo_j to hi_j do
      let lo_k = 1 in
      let hi_k = !s_n in
      for i_k = lo_k to hi_k do
        if (Float.compare (Array.unsafe_get a_b ((i_k - l0_b) + ((i_j - l1_b) * t1_b))) 0. <> 0) then begin
          let lo_i = 1 in
          let hi_i = !s_n in
          for i_i = lo_i to hi_i do
            Array.unsafe_set a_c ((i_i - l0_c) + ((i_j - l1_c) * t1_c)) ((Array.unsafe_get a_c ((i_i - l0_c) + ((i_j - l1_c) * t1_c))) +. ((Array.unsafe_get a_a ((i_i - l0_a) + ((i_k - l1_a) * t1_a))) *. (Array.unsafe_get a_b ((i_k - l0_b) + ((i_j - l1_b) * t1_b)))));
          done;
        end;
      done;
    done;
    ()
  
  let () = raise (Blockc_kernel run)

  $ blockc compile matmul --variant transformed --emit ocaml
  (* matmul_transformed — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_a = getfa "A" in
    let d_a = getfd "A" in
    let l0_a = d_a.(0) in
    let l1_a = d_a.(2) in
    let t1_a = 1 * (d_a.(1) - d_a.(0) + 1) in
    let a_b = getfa "B" in
    let d_b = getfd "B" in
    let l0_b = d_b.(0) in
    let l1_b = d_b.(2) in
    let t1_b = 1 * (d_b.(1) - d_b.(0) + 1) in
    let a_c = getfa "C" in
    let d_c = getfd "C" in
    let l0_c = d_c.(0) in
    let l1_c = d_c.(2) in
    let t1_c = 1 * (d_c.(1) - d_c.(0) + 1) in
    let ia_klb = getia "KLB" in
    let id_klb = getid "KLB" in
    let il0_klb = id_klb.(0) in
    let ia_kub = getia "KUB" in
    let id_kub = getid "KUB" in
    let il0_kub = id_kub.(0) in
    let s_flag = ref (geti "FLAG") in
    let s_kc = ref (geti "KC") in
    let s_n = ref (geti "N") in
    if !s_n < 1 then failwith "matmul_transformed: unchecked accesses assume N >= 1";
    if not (d_a.(0) = 1 && d_a.(1) = !s_n && d_a.(2) = 1 && d_a.(3) = !s_n) then failwith "matmul_transformed: A dims differ from the declared shape";
    if not (d_b.(0) = 1 && d_b.(1) = !s_n && d_b.(2) = 1 && d_b.(3) = !s_n) then failwith "matmul_transformed: B dims differ from the declared shape";
    if not (d_c.(0) = 1 && d_c.(1) = !s_n && d_c.(2) = 1 && d_c.(3) = !s_n) then failwith "matmul_transformed: C dims differ from the declared shape";
    let lo_j = 1 in
    let hi_j = !s_n in
    for i_j = lo_j to hi_j do
      s_kc := 0;
      s_flag := 0;
      let lo_k = 1 in
      let hi_k = !s_n in
      for i_k = lo_k to hi_k do
        if (Float.compare (Array.unsafe_get a_b ((i_k - l0_b) + ((i_j - l1_b) * t1_b))) 0. <> 0) then begin
          if (!s_flag = 0) then begin
            s_kc := (!s_kc + 1);
            ia_klb.((!s_kc - il0_klb)) <- i_k;
            s_flag := 1;
          end;
        end
        else begin
          if (!s_flag = 1) then begin
            ia_kub.((!s_kc - il0_kub)) <- (i_k - 1);
            s_flag := 0;
          end;
        end;
      done;
      if (!s_flag = 1) then begin
        ia_kub.((!s_kc - il0_kub)) <- !s_n;
        s_flag := 0;
      end;
      let lo_kn = 1 in
      let hi_kn = !s_kc in
      for i_kn = lo_kn to hi_kn do
        let lo_k = ia_klb.((i_kn - il0_klb)) in
        let hi_k = ia_kub.((i_kn - il0_kub)) in
        for i_k = lo_k to hi_k do
          let lo_i = 1 in
          let hi_i = !s_n in
          for i_i = lo_i to hi_i do
            Array.unsafe_set a_c ((i_i - l0_c) + ((i_j - l1_c) * t1_c)) ((Array.unsafe_get a_c ((i_i - l0_c) + ((i_j - l1_c) * t1_c))) +. (a_a.(((i_i - l0_a) + ((i_k - l1_a) * t1_a))) *. a_b.(((i_k - l0_b) + ((i_j - l1_b) * t1_b)))));
          done;
        done;
      done;
    done;
    seti "FLAG" !s_flag;
    seti "KC" !s_kc;
    ()
  
  let () = raise (Blockc_kernel run)

Conv exercises non-unit lower bounds: the flat index subtracts the
declared lower bound of each dimension.

  $ blockc compile conv --emit ocaml
  (* conv_point — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_f1 = getfa "F1" in
    let d_f1 = getfd "F1" in
    let l0_f1 = d_f1.(0) in
    let a_f2 = getfa "F2" in
    let d_f2 = getfd "F2" in
    let l0_f2 = d_f2.(0) in
    let a_f3 = getfa "F3" in
    let d_f3 = getfd "F3" in
    let l0_f3 = d_f3.(0) in
    let s_n1 = ref (geti "N1") in
    let s_n2 = ref (geti "N2") in
    let s_n3 = ref (geti "N3") in
    let f_dt = ref (getf "DT") in
    if !s_n1 < 1 then failwith "conv_point: unchecked accesses assume N1 >= 1";
    if !s_n2 < 1 then failwith "conv_point: unchecked accesses assume N2 >= 1";
    if !s_n3 < 1 then failwith "conv_point: unchecked accesses assume N3 >= 1";
    if not (d_f1.(0) = 0 && d_f1.(1) = (imax !s_n1 !s_n3)) then failwith "conv_point: F1 dims differ from the declared shape";
    if not (d_f2.(0) = (0 - !s_n2) && d_f2.(1) = (imax !s_n2 !s_n3)) then failwith "conv_point: F2 dims differ from the declared shape";
    if not (d_f3.(0) = 0 && d_f3.(1) = !s_n3) then failwith "conv_point: F3 dims differ from the declared shape";
    let lo_i = 0 in
    let hi_i = !s_n3 in
    for i_i = lo_i to hi_i do
      let lo_k = (imax 0 (i_i - !s_n2)) in
      let hi_k = (imin i_i !s_n1) in
      for i_k = lo_k to hi_k do
        Array.unsafe_set a_f3 (i_i - l0_f3) ((Array.unsafe_get a_f3 (i_i - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_i - i_k) - l0_f2))));
      done;
    done;
    ()
  
  let () = raise (Blockc_kernel run)

  $ blockc compile conv --variant transformed --emit ocaml
  (* conv_transformed — OCaml lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (Stdlib only).  The host obtains [run] through the
     Blockc_kernel exception raised when the plugin is loaded. *)
  
  exception Blockc_kernel of
    ((string -> int) * (string -> float) * (string -> float array)
    * (string -> int array) * (string -> int array) * (string -> int array)
    * (string -> float -> unit) * (string -> int -> unit) -> unit)
  
  let imin (a : int) (b : int) = if a <= b then a else b
  let imax (a : int) (b : int) = if a >= b then a else b
  
  let fsqrt x =
    if x < 0.0 then failwith (Printf.sprintf "SQRT of negative %g" x)
    else sqrt x
  
  let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a
  
  let run ((geti : string -> int), (getf : string -> float),
           (getfa : string -> float array), (getia : string -> int array),
           (getfd : string -> int array), (getid : string -> int array),
           (setf : string -> float -> unit), (seti : string -> int -> unit)) =
    ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);
    ignore (imin, imax, fsqrt, fsign);
    let a_f1 = getfa "F1" in
    let d_f1 = getfd "F1" in
    let l0_f1 = d_f1.(0) in
    let a_f2 = getfa "F2" in
    let d_f2 = getfd "F2" in
    let l0_f2 = d_f2.(0) in
    let a_f3 = getfa "F3" in
    let d_f3 = getfd "F3" in
    let l0_f3 = d_f3.(0) in
    let s_n1 = ref (geti "N1") in
    let s_n2 = ref (geti "N2") in
    let s_n3 = ref (geti "N3") in
    let f_dt = ref (getf "DT") in
    if !s_n1 < 1 then failwith "conv_transformed: unchecked accesses assume N1 >= 1";
    if !s_n2 < 1 then failwith "conv_transformed: unchecked accesses assume N2 >= 1";
    if !s_n3 < 1 then failwith "conv_transformed: unchecked accesses assume N3 >= 1";
    if not (d_f1.(0) = 0 && d_f1.(1) = (imax !s_n1 !s_n3)) then failwith "conv_transformed: F1 dims differ from the declared shape";
    if not (d_f2.(0) = (0 - !s_n2) && d_f2.(1) = (imax !s_n2 !s_n3)) then failwith "conv_transformed: F2 dims differ from the declared shape";
    if not (d_f3.(0) = 0 && d_f3.(1) = !s_n3) then failwith "conv_transformed: F3 dims differ from the declared shape";
    let lo_one_ = 1 in
    let hi_one_ = 1 in
    for i_one_ = lo_one_ to hi_one_ do
      let lo_i = 0 in
      let hi_i = ((imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) - 3) in
      let st_i = 4 in
      if st_i = 0 then failwith "DO I: zero step";
      let n_i = (hi_i - lo_i + st_i) / st_i in
      let r_i = ref lo_i in
      for _ = 1 to n_i do
        let i_i = !r_i in
        let lo_k = 0 in
        let hi_k = i_i in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.(((i_i - i_k) - l0_f2))));
          a_f3.(((i_i + 1) - l0_f3)) <- (a_f3.(((i_i + 1) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 1) - i_k) - l0_f2))));
          a_f3.(((i_i + 2) - l0_f3)) <- (a_f3.(((i_i + 2) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 2) - i_k) - l0_f2))));
          a_f3.(((i_i + 3) - l0_f3)) <- (a_f3.(((i_i + 3) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 3) - i_k) - l0_f2))));
        done;
        let lo_ii = (i_i + 1) in
        let hi_ii = (i_i + 3) in
        for i_ii = lo_ii to hi_ii do
          let lo_k = (imax 0 (i_i + 1)) in
          let hi_k = i_ii in
          for i_k = lo_k to hi_k do
            a_f3.((i_ii - l0_f3)) <- (a_f3.((i_ii - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.(((i_ii - i_k) - l0_f2))));
          done;
        done;
        r_i := i_i + st_i;
      done;
      let lo_i = (4 * (((imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) + 1) / 4)) in
      let hi_i = (imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) in
      for i_i = lo_i to hi_i do
        let lo_k = 0 in
        let hi_k = i_i in
        for i_k = lo_k to hi_k do
          Array.unsafe_set a_f3 (i_i - l0_f3) ((Array.unsafe_get a_f3 (i_i - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_i - i_k) - l0_f2))));
        done;
      done;
      let lo_i = (imax 0 ((imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) + 1)) in
      let hi_i = ((imin !s_n3 !s_n1) - 3) in
      let st_i = 4 in
      if st_i = 0 then failwith "DO I: zero step";
      let n_i = (hi_i - lo_i + st_i) / st_i in
      let r_i = ref lo_i in
      for _ = 1 to n_i do
        let i_i = !r_i in
        let lo_ii = i_i in
        let hi_ii = (i_i + 2) in
        for i_ii = lo_ii to hi_ii do
          let lo_k = (i_ii + ((-1) * !s_n2)) in
          let hi_k = (imin i_ii ((i_i + 2) + ((-1) * !s_n2))) in
          for i_k = lo_k to hi_k do
            a_f3.((i_ii - l0_f3)) <- (a_f3.((i_ii - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_ii - i_k) - l0_f2))));
          done;
        done;
        let lo_k = ((i_i + 3) + ((-1) * !s_n2)) in
        let hi_k = i_i in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_i - i_k) - l0_f2))));
          a_f3.(((i_i + 1) - l0_f3)) <- (a_f3.(((i_i + 1) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 (((i_i + 1) - i_k) - l0_f2))));
          a_f3.(((i_i + 2) - l0_f3)) <- (a_f3.(((i_i + 2) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 (((i_i + 2) - i_k) - l0_f2))));
          a_f3.(((i_i + 3) - l0_f3)) <- (a_f3.(((i_i + 3) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 (((i_i + 3) - i_k) - l0_f2))));
        done;
        let lo_ii = (i_i + 1) in
        let hi_ii = (i_i + 3) in
        for i_ii = lo_ii to hi_ii do
          let lo_k = (imax (i_ii + ((-1) * !s_n2)) (i_i + 1)) in
          let hi_k = i_ii in
          for i_k = lo_k to hi_k do
            a_f3.((i_ii - l0_f3)) <- (a_f3.((i_ii - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_ii - i_k) - l0_f2))));
          done;
        done;
        r_i := i_i + st_i;
      done;
      let lo_i = ((imax 0 ((imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) + 1)) + (4 * ((((imin !s_n3 !s_n1) - (imax 0 ((imin (imin !s_n3 !s_n1) ((0 - ((-1) * !s_n2)) - 1)) + 1))) + 1) / 4))) in
      let hi_i = (imin !s_n3 !s_n1) in
      for i_i = lo_i to hi_i do
        let lo_k = (i_i - !s_n2) in
        let hi_k = i_i in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_i - i_k) - l0_f2))));
        done;
      done;
      let lo_i = (imax 0 ((imin !s_n3 !s_n1) + 1)) in
      let hi_i = ((imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) - 3) in
      let st_i = 4 in
      if st_i = 0 then failwith "DO I: zero step";
      let n_i = (hi_i - lo_i + st_i) / st_i in
      let r_i = ref lo_i in
      for _ = 1 to n_i do
        let i_i = !r_i in
        let lo_k = 0 in
        let hi_k = !s_n1 in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. a_f2.(((i_i - i_k) - l0_f2))));
          a_f3.(((i_i + 1) - l0_f3)) <- (a_f3.(((i_i + 1) - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. a_f2.((((i_i + 1) - i_k) - l0_f2))));
          a_f3.(((i_i + 2) - l0_f3)) <- (a_f3.(((i_i + 2) - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. a_f2.((((i_i + 2) - i_k) - l0_f2))));
          a_f3.(((i_i + 3) - l0_f3)) <- (a_f3.(((i_i + 3) - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. a_f2.((((i_i + 3) - i_k) - l0_f2))));
        done;
        r_i := i_i + st_i;
      done;
      let lo_i = ((imax 0 ((imin !s_n3 !s_n1) + 1)) + (4 * ((((imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) - (imax 0 ((imin !s_n3 !s_n1) + 1))) + 1) / 4))) in
      let hi_i = (imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) in
      for i_i = lo_i to hi_i do
        let lo_k = 0 in
        let hi_k = !s_n1 in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. (Array.unsafe_get a_f1 (i_k - l0_f1))) *. a_f2.(((i_i - i_k) - l0_f2))));
        done;
      done;
      let lo_i = (imax (imax 0 ((imin !s_n3 !s_n1) + 1)) ((imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) + 1)) in
      let hi_i = (!s_n3 - 3) in
      let st_i = 4 in
      if st_i = 0 then failwith "DO I: zero step";
      let n_i = (hi_i - lo_i + st_i) / st_i in
      let r_i = ref lo_i in
      for _ = 1 to n_i do
        let i_i = !r_i in
        let lo_ii = i_i in
        let hi_ii = (i_i + 2) in
        for i_ii = lo_ii to hi_ii do
          let lo_k = (i_ii + ((-1) * !s_n2)) in
          let hi_k = (imin ((i_i + 2) + ((-1) * !s_n2)) !s_n1) in
          for i_k = lo_k to hi_k do
            Array.unsafe_set a_f3 (i_ii - l0_f3) ((Array.unsafe_get a_f3 (i_ii - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. (Array.unsafe_get a_f2 ((i_ii - i_k) - l0_f2))));
          done;
        done;
        let lo_k = ((i_i + 3) + ((-1) * !s_n2)) in
        let hi_k = !s_n1 in
        for i_k = lo_k to hi_k do
          Array.unsafe_set a_f3 (i_i - l0_f3) ((Array.unsafe_get a_f3 (i_i - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.(((i_i - i_k) - l0_f2))));
          Array.unsafe_set a_f3 ((i_i + 1) - l0_f3) ((Array.unsafe_get a_f3 ((i_i + 1) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 1) - i_k) - l0_f2))));
          Array.unsafe_set a_f3 ((i_i + 2) - l0_f3) ((Array.unsafe_get a_f3 ((i_i + 2) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 2) - i_k) - l0_f2))));
          Array.unsafe_set a_f3 ((i_i + 3) - l0_f3) ((Array.unsafe_get a_f3 ((i_i + 3) - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.((((i_i + 3) - i_k) - l0_f2))));
        done;
        r_i := i_i + st_i;
      done;
      let lo_i = ((imax (imax 0 ((imin !s_n3 !s_n1) + 1)) ((imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) + 1)) + (4 * (((!s_n3 - (imax (imax 0 ((imin !s_n3 !s_n1) + 1)) ((imin !s_n3 ((0 - ((-1) * !s_n2)) - 1)) + 1))) + 1) / 4))) in
      let hi_i = !s_n3 in
      for i_i = lo_i to hi_i do
        let lo_k = (i_i - !s_n2) in
        let hi_k = !s_n1 in
        for i_k = lo_k to hi_k do
          a_f3.((i_i - l0_f3)) <- (a_f3.((i_i - l0_f3)) +. ((!f_dt *. a_f1.((i_k - l0_f1))) *. a_f2.(((i_i - i_k) - l0_f2))));
        done;
      done;
    done;
    ()
  
  let () = raise (Blockc_kernel run)
