(* Shared test utilities. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

(* Every QCheck property runs from an explicit seed embedded in the test
   name, so a failure is replayable: rerun with QCHECK_SEED=<seed>. *)
let qcheck_seed =
  match Option.map int_of_string_opt (Sys.getenv_opt "QCHECK_SEED") with
  | Some (Some s) -> s
  | _ ->
      Random.self_init ();
      Random.int 1_000_000_000

let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck2.Test.make ~count
       ~name:(Printf.sprintf "%s [replay: QCHECK_SEED=%d]" name qcheck_seed)
       gen prop)

let ok_or_fail what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

(* Interpreter equivalence of a kernel against a transformed block. *)
let equivalent ?tol ?(extra = []) kernel block ~bindings ~seed =
  match Kernel_def.equivalent ?tol ~extra kernel block ~bindings ~seed with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Evaluate an integer expression with an assoc environment. *)
let eval_expr env e =
  Expr.eval
    (fun v ->
      match List.assoc_opt v env with
      | Some n -> n
      | None -> Alcotest.failf "unbound %s" v)
    (fun name _ -> Alcotest.failf "array %s" name)
    e

(* A small environment with one 1-D array for interpreter tests. *)
let env_1d ?(n = 16) name =
  let env = Env.create () in
  Env.add_farray env name [ (1, n) ];
  Env.set_iscalar env "N" n;
  env

let run_block env block = Exec.run env block

(* Compare two runs of blocks from identical environments. *)
let same_result ?tol ~make env_to_block1 env_to_block2 =
  let e1 = make () and e2 = make () in
  run_block e1 (env_to_block1 ());
  run_block e2 (env_to_block2 ());
  match Env.diff ?tol e1 e2 with
  | None -> ()
  | Some m -> Alcotest.fail m
