(* The native code generator: emission, the JIT pipeline, and bitwise
   agreement with the interpreter.  The golden emitted sources are
   pinned in codegen_emit.t; these tests exercise behaviour. *)

open Helpers
module B = Builder

let entry name = Option.get (Blockability.find name)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let require_native () =
  match Jit.available () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "native codegen unavailable: %s" m

(* Fresh kernel-shaped environments for hand-rolled blocks. *)
let simple_env ~n =
  let env = Env.create () in
  Env.add_farray env "A" [ (1, n); (1, n) ];
  Env.set_iscalar env "N" n;
  let rng = Lcg.create 7 in
  Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
  env

let emit_ok ?unsafe ?shapes ~name block =
  ok_or_fail "emit" (Emit.source ?unsafe ?shapes ~name block)

let suite =
  ( "codegen",
    [
      case "emission succeeds for every kernel (point + transformed)" (fun () ->
          List.iter
            (fun (e : Blockability.entry) ->
              let shapes = e.kernel.Kernel_def.shapes in
              ignore
                (emit_ok ~shapes ~name:(e.name ^ "_point")
                   e.kernel.Kernel_def.block);
              match Blockability.derive e with
              | Error _ -> () (* householder: expected negative result *)
              | Ok { result; _ } ->
                  ignore
                    (emit_ok ~shapes ~name:(e.name ^ "_transformed") [ result ]))
            Blockability.entries);
      case "in-bounds proofs fire for lu (and are re-checked at run time)"
        (fun () ->
          let e = entry "lu" in
          let src =
            emit_ok ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
              e.kernel.Kernel_def.block
          in
          let has needle = contains src needle in
          check_bool "unsafe_get" true (has "Array.unsafe_get");
          check_bool "unsafe_set" true (has "Array.unsafe_set");
          check_bool "dims re-checked" true (has "declared shape");
          check_bool "assumption re-checked" true (has "assume N >= 1"));
      case "unsafe:false disables unchecked accesses" (fun () ->
          let e = entry "lu" in
          let src =
            emit_ok ~unsafe:false ~shapes:e.kernel.Kernel_def.shapes
              ~name:"lu_point" e.kernel.Kernel_def.block
          in
          check_bool "no unsafe accesses" false (contains src "unsafe_"));
      case "unknown intrinsic is rejected" (fun () ->
          let block = [ Stmt.Assign ("S", [], Stmt.Fcall ("TANH", [ B.fc 1.0 ])) ] in
          match Emit.source ~name:"bad" block with
          | Ok _ -> Alcotest.fail "expected an emission error"
          | Error m ->
              check_bool "names the intrinsic" true (contains m "TANH"));
      case "assignment to a loop index is rejected" (fun () ->
          let block =
            [ B.do_ "I" (B.i 1) (B.v "N") [ Stmt.Iassign ("I", [], B.i 0) ] ]
          in
          match Emit.source ~name:"bad" block with
          | Ok _ -> Alcotest.fail "expected an emission error"
          | Error _ -> ());
      case "native lu runs bitwise equal to the interpreter" (fun () ->
          require_native ();
          let e = entry "lu" in
          let bindings = [ ("N", 20) ] in
          let env_i = Kernel_def.make_env e.kernel ~bindings ~seed:11 in
          Exec.run env_i e.kernel.Kernel_def.block;
          let env_n = Kernel_def.make_env e.kernel ~bindings ~seed:11 in
          ok_or_fail "native run"
            (Jit.run_block ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
               e.kernel.Kernel_def.block env_n);
          match Env.diff ~only:[ "A" ] env_i env_n with
          | None -> ()
          | Some m -> Alcotest.fail m);
      case "native conv handles non-unit lower bounds bitwise" (fun () ->
          require_native ();
          let e = entry "conv" in
          let bindings = e.Blockability.default_bindings in
          let env_i = Kernel_def.make_env e.kernel ~bindings ~seed:5 in
          Exec.run env_i e.kernel.Kernel_def.block;
          let env_n = Kernel_def.make_env e.kernel ~bindings ~seed:5 in
          ok_or_fail "native run"
            (Jit.run_block ~shapes:e.kernel.Kernel_def.shapes ~name:"conv_point"
               e.kernel.Kernel_def.block env_n);
          match Env.diff ~only:e.kernel.Kernel_def.traced env_i env_n with
          | None -> ()
          | Some m -> Alcotest.fail m);
      case "scalar results are written back to the environment" (fun () ->
          require_native ();
          let block =
            [
              Stmt.Iassign ("T", [], Expr.(mul (var "N") (int 2)));
              Stmt.Assign ("S", [], B.(fc 1.5 +. fc 2.0));
            ]
          in
          let env = simple_env ~n:4 in
          ok_or_fail "native run" (Jit.run_block ~name:"writeback" block env);
          check_int "T" 8 (Env.iscalar env "T");
          check_bool "S" true (Float.equal (Env.fscalar env "S") 3.5));
      case "zero-step loop fails like the interpreter" (fun () ->
          require_native ();
          let block =
            [
              Stmt.Loop
                {
                  index = "I";
                  lo = Expr.int 1;
                  hi = Expr.var "N";
                  step = Expr.int 0;
                  body = [ Stmt.Assign ("S", [], B.fc 1.0) ];
                };
            ]
          in
          let env = simple_env ~n:4 in
          match Jit.run_block ~name:"zerostep" block env with
          | Ok () -> Alcotest.fail "expected a zero-step error"
          | Error m ->
              check_bool "message" true (contains m "zero step"));
      case "second compile of the same source hits the cache" (fun () ->
          require_native ();
          let e = entry "lu" in
          let src =
            emit_ok ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
              e.kernel.Kernel_def.block
          in
          let l1 = ok_or_fail "compile" (Jit.compile ~name:"lu_point" src) in
          let l2 = ok_or_fail "compile" (Jit.compile ~name:"lu_point" src) in
          check_bool "memoized" true l2.Jit.cached;
          check_bool "same key" true (String.equal l1.Jit.key l2.Jit.key));
      case "broken ocamlopt degrades to a clear error" (fun () ->
          (* A unique name makes a unique source, so neither the memo
             nor the on-disk cache can satisfy the request. *)
          let block = [ Stmt.Assign ("S", [], B.fc 1.0) ] in
          let src = emit_ok ~name:"fallback_probe_no_such_compiler" block in
          (match Jit.compile ~ocamlopt:"/nonexistent/ocamlopt" ~name:"probe" src with
          | Ok _ -> Alcotest.fail "expected a compile failure"
          | Error m ->
              check_bool "mentions ocamlopt" true (contains m "ocamlopt"));
          (* The interpreter path is unaffected. *)
          let env = simple_env ~n:2 in
          Exec.run env block;
          check_bool "interpreter still works" true
            (Float.equal (Env.fscalar env "S") 1.0));
      case "native_compare verifies and times the lu pair" (fun () ->
          require_native ();
          let r =
            ok_or_fail "native_compare"
              (Blockability.native_compare ~reps:1 (entry "lu"))
          in
          check_bool "point time measured" true (r.Blockability.nt_point_s >= 0.0);
          check_bool "transformed time measured" true
            (r.Blockability.nt_transformed_s >= 0.0));
      case "native_compare reports the householder negative result" (fun () ->
          match Blockability.native_compare (entry "householder") with
          | Ok _ -> Alcotest.fail "householder must not block"
          | Error m ->
              check_bool "cites §5.3" true (contains m "5.3"));
    ] )
