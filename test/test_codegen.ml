(* The native code generator: emission, the JIT pipeline, and bitwise
   agreement with the interpreter.  The golden emitted sources are
   pinned in codegen_emit.t; these tests exercise behaviour. *)

open Helpers
module B = Builder

let entry name = Option.get (Blockability.find name)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let require_native () =
  match Jit.available () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "native codegen unavailable: %s" m

let require_cc () =
  match Cc.available () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "C backend unavailable: %s" m

(* A private cache dir makes the first compile a real compiler run even
   if an earlier test run left artifacts on disk. *)
let with_private_cache f =
  let saved = Jit.cache_dir () in
  let tmp = Filename.temp_file "blockc-cache-test" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Unix.putenv "BLOCKC_JIT_CACHE" tmp;
  Fun.protect ~finally:(fun () -> Unix.putenv "BLOCKC_JIT_CACHE" saved) f

(* Fresh kernel-shaped environments for hand-rolled blocks. *)
let simple_env ~n =
  let env = Env.create () in
  Env.add_farray env "A" [ (1, n); (1, n) ];
  Env.set_iscalar env "N" n;
  let rng = Lcg.create 7 in
  Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
  env

let emit_ok ?unsafe ?shapes ~name block =
  ok_or_fail "emit" (Emit.source ?unsafe ?shapes ~name block)

let suite =
  ( "codegen",
    [
      case "emission succeeds for every kernel (point + transformed)" (fun () ->
          List.iter
            (fun (e : Blockability.entry) ->
              let shapes = e.kernel.Kernel_def.shapes in
              ignore
                (emit_ok ~shapes ~name:(e.name ^ "_point")
                   e.kernel.Kernel_def.block);
              match Blockability.derive e with
              | Error _ -> () (* householder: expected negative result *)
              | Ok { result; _ } ->
                  ignore
                    (emit_ok ~shapes ~name:(e.name ^ "_transformed") [ result ]))
            Blockability.entries);
      case "in-bounds proofs fire for lu (and are re-checked at run time)"
        (fun () ->
          let e = entry "lu" in
          let src =
            emit_ok ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
              e.kernel.Kernel_def.block
          in
          let has needle = contains src needle in
          check_bool "unsafe_get" true (has "Array.unsafe_get");
          check_bool "unsafe_set" true (has "Array.unsafe_set");
          check_bool "dims re-checked" true (has "declared shape");
          check_bool "assumption re-checked" true (has "assume N >= 1"));
      case "unsafe:false disables unchecked accesses" (fun () ->
          let e = entry "lu" in
          let src =
            emit_ok ~unsafe:false ~shapes:e.kernel.Kernel_def.shapes
              ~name:"lu_point" e.kernel.Kernel_def.block
          in
          check_bool "no unsafe accesses" false (contains src "unsafe_"));
      case "unknown intrinsic is rejected" (fun () ->
          let block = [ Stmt.Assign ("S", [], Stmt.Fcall ("TANH", [ B.fc 1.0 ])) ] in
          match Emit.source ~name:"bad" block with
          | Ok _ -> Alcotest.fail "expected an emission error"
          | Error m ->
              check_bool "names the intrinsic" true (contains m "TANH"));
      case "assignment to a loop index is rejected" (fun () ->
          let block =
            [ B.do_ "I" (B.i 1) (B.v "N") [ Stmt.Iassign ("I", [], B.i 0) ] ]
          in
          match Emit.source ~name:"bad" block with
          | Ok _ -> Alcotest.fail "expected an emission error"
          | Error _ -> ());
      case "native lu runs bitwise equal to the interpreter" (fun () ->
          require_native ();
          let e = entry "lu" in
          let bindings = [ ("N", 20) ] in
          let env_i = Kernel_def.make_env e.kernel ~bindings ~seed:11 in
          Exec.run env_i e.kernel.Kernel_def.block;
          let env_n = Kernel_def.make_env e.kernel ~bindings ~seed:11 in
          ok_or_fail "native run"
            (Jit.run_block ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
               e.kernel.Kernel_def.block env_n);
          match Env.diff ~only:[ "A" ] env_i env_n with
          | None -> ()
          | Some m -> Alcotest.fail m);
      case "native conv handles non-unit lower bounds bitwise" (fun () ->
          require_native ();
          let e = entry "conv" in
          let bindings = e.Blockability.default_bindings in
          let env_i = Kernel_def.make_env e.kernel ~bindings ~seed:5 in
          Exec.run env_i e.kernel.Kernel_def.block;
          let env_n = Kernel_def.make_env e.kernel ~bindings ~seed:5 in
          ok_or_fail "native run"
            (Jit.run_block ~shapes:e.kernel.Kernel_def.shapes ~name:"conv_point"
               e.kernel.Kernel_def.block env_n);
          match Env.diff ~only:e.kernel.Kernel_def.traced env_i env_n with
          | None -> ()
          | Some m -> Alcotest.fail m);
      case "scalar results are written back to the environment" (fun () ->
          require_native ();
          let block =
            [
              Stmt.Iassign ("T", [], Expr.(mul (var "N") (int 2)));
              Stmt.Assign ("S", [], B.(fc 1.5 +. fc 2.0));
            ]
          in
          let env = simple_env ~n:4 in
          ok_or_fail "native run" (Jit.run_block ~name:"writeback" block env);
          check_int "T" 8 (Env.iscalar env "T");
          check_bool "S" true (Float.equal (Env.fscalar env "S") 3.5));
      case "zero-step loop fails like the interpreter" (fun () ->
          require_native ();
          let block =
            [
              Stmt.Loop
                {
                  index = "I";
                  lo = Expr.int 1;
                  hi = Expr.var "N";
                  step = Expr.int 0;
                  body = [ Stmt.Assign ("S", [], B.fc 1.0) ];
                };
            ]
          in
          let env = simple_env ~n:4 in
          match Jit.run_block ~name:"zerostep" block env with
          | Ok () -> Alcotest.fail "expected a zero-step error"
          | Error m ->
              check_bool "message" true (contains m "zero step"));
      case "second compile of the same source hits the cache" (fun () ->
          require_native ();
          let e = entry "lu" in
          let src =
            emit_ok ~shapes:e.kernel.Kernel_def.shapes ~name:"lu_point"
              e.kernel.Kernel_def.block
          in
          let l1 = ok_or_fail "compile" (Jit.compile ~name:"lu_point" src) in
          let l2 = ok_or_fail "compile" (Jit.compile ~name:"lu_point" src) in
          check_bool "memoized" true l2.Jit.cached;
          check_bool "same key" true (String.equal l1.Jit.key l2.Jit.key));
      case "broken ocamlopt degrades to a clear error" (fun () ->
          (* A unique name makes a unique source, so neither the memo
             nor the on-disk cache can satisfy the request. *)
          let block = [ Stmt.Assign ("S", [], B.fc 1.0) ] in
          let src = emit_ok ~name:"fallback_probe_no_such_compiler" block in
          (match Jit.compile ~ocamlopt:"/nonexistent/ocamlopt" ~name:"probe" src with
          | Ok _ -> Alcotest.fail "expected a compile failure"
          | Error m ->
              check_bool "mentions ocamlopt" true (contains m "ocamlopt"));
          (* The interpreter path is unaffected. *)
          let env = simple_env ~n:2 in
          Exec.run env block;
          check_bool "interpreter still works" true
            (Float.equal (Env.fscalar env "S") 1.0));
      case "native_compare verifies and times the lu pair" (fun () ->
          require_native ();
          let r =
            ok_or_fail "native_compare"
              (Blockability.native_compare ~reps:1 (entry "lu"))
          in
          check_bool "point time measured" true (r.Blockability.nt_point_s >= 0.0);
          check_bool "transformed time measured" true
            (r.Blockability.nt_transformed_s >= 0.0));
      case "native_compare reports the householder negative result" (fun () ->
          match Blockability.native_compare (entry "householder") with
          | Ok _ -> Alcotest.fail "householder must not block"
          | Error m ->
              check_bool "cites §5.3" true (contains m "5.3"));
      case
        "blueprint: one kernel at two sizes is one key, one ocamlopt run, \
         bitwise"
        (fun () ->
          require_native ();
          let e = entry "lu" in
          let shapes = e.kernel.Kernel_def.shapes in
          (* Concretize N so the two blocks really differ (the symbolic
             registry IR is size-independent already); the blueprint
             must hoist both back to one structure. *)
          let concretize n =
            let s = [ ("N", Expr.int n) ] in
            ( Stmt.subst_block s e.kernel.Kernel_def.block,
              List.map
                (fun (a, dims) ->
                  ( a,
                    List.map
                      (fun (lo, hi) -> (Expr.subst s lo, Expr.subst s hi))
                      dims ))
                shapes )
          in
          let block24, shapes24 = concretize 24
          and block28, shapes28 = concretize 28 in
          let bp24 = Blueprint.of_block ~shapes:shapes24 block24
          and bp28 = Blueprint.of_block ~shapes:shapes28 block28 in
          check_string "one blueprint key" bp24.Blueprint.key
            bp28.Blueprint.key;
          (* A private cache dir makes the first compile a real ocamlopt
             run even if an earlier test run left artifacts on disk. *)
          let saved = Jit.cache_dir () in
          let tmp = Filename.temp_file "blockc-bp-test" "" in
          Sys.remove tmp;
          Unix.mkdir tmp 0o700;
          Unix.putenv "BLOCKC_JIT_CACHE" tmp;
          Fun.protect
            ~finally:(fun () -> Unix.putenv "BLOCKC_JIT_CACHE" saved)
            (fun () ->
              let c0 = Jit.compiler_invocations () in
              let l24 =
                ok_or_fail "compile 24"
                  (Jit.compile_blueprint ~name:"lu_n24" bp24)
              in
              let l28 =
                ok_or_fail "compile 28"
                  (Jit.compile_blueprint ~name:"lu_n28" bp28)
              in
              check_int "exactly one ocamlopt invocation" 1
                (Jit.compiler_invocations () - c0);
              check_bool "second compile is a memo hit" true
                (l28.Jit.disposition = Jit.Memo);
              check_string "one artifact" l24.Jit.cmxs l28.Jit.cmxs;
              (* Bitwise vs the interpreter at both sizes. *)
              List.iter
                (fun (n, block, (bp : Blueprint.t), (l : Jit.loaded)) ->
                  let bindings = [ ("N", n) ] in
                  let env_i =
                    Kernel_def.make_env e.kernel ~bindings ~seed:11
                  in
                  Exec.run env_i block;
                  let env_n =
                    Kernel_def.make_env e.kernel ~bindings ~seed:11
                  in
                  ok_or_fail "native run"
                    (Jit.run ~bindings:bp.Blueprint.bindings l.Jit.fn env_n);
                  match Env.diff ~only:[ "A" ] env_i env_n with
                  | None -> ()
                  | Some m -> Alcotest.failf "N=%d: %s" n m)
                [ (24, block24, bp24, l24); (28, block28, bp28, l28) ]));
      case "blueprint memo is LRU-bounded and counts evictions" (fun () ->
          require_native ();
          let saved_dir = Jit.cache_dir () in
          let saved_cap =
            Option.value
              (Sys.getenv_opt "BLOCKC_JIT_MEMO_CAP")
              ~default:"64"
          in
          let tmp = Filename.temp_file "blockc-lru-test" "" in
          Sys.remove tmp;
          Unix.mkdir tmp 0o700;
          Unix.putenv "BLOCKC_JIT_CACHE" tmp;
          Unix.putenv "BLOCKC_JIT_MEMO_CAP" "2";
          Fun.protect
            ~finally:(fun () ->
              Unix.putenv "BLOCKC_JIT_CACHE" saved_dir;
              Unix.putenv "BLOCKC_JIT_MEMO_CAP" saved_cap)
            (fun () ->
              let e0 = Jit.memo_evictions () in
              (* Three distinct structures (float literals are never
                 hoisted, so each is its own blueprint key). *)
              List.iter
                (fun c ->
                  let bp =
                    Blueprint.of_block
                      [ Stmt.Assign ("S", [], B.fc c) ]
                  in
                  ignore
                    (ok_or_fail "compile"
                       (Jit.compile_blueprint ~name:"lru_probe" bp)))
                [ 1.125; 2.125; 3.125 ];
              check_bool "memo stayed within cap" true (Jit.memo_size () <= 2);
              check_bool "evictions counted" true
                (Jit.memo_evictions () - e0 >= 1)));
      case "concurrent compiles of one blueprint are single-flighted"
        (fun () ->
          require_native ();
          let saved = Jit.cache_dir () in
          let tmp = Filename.temp_file "blockc-flight-test" "" in
          Sys.remove tmp;
          Unix.mkdir tmp 0o700;
          Unix.putenv "BLOCKC_JIT_CACHE" tmp;
          Fun.protect
            ~finally:(fun () -> Unix.putenv "BLOCKC_JIT_CACHE" saved)
            (fun () ->
              let bp =
                Blueprint.of_block [ Stmt.Assign ("S", [], B.fc 7.0625) ]
              in
              let c0 = Jit.compiler_invocations () in
              let ds =
                List.init 3 (fun _ ->
                    Domain.spawn (fun () ->
                        Jit.compile_blueprint ~name:"flight_probe" bp))
              in
              let keys =
                List.map
                  (fun d ->
                    (ok_or_fail "compile" (Domain.join d)).Jit.key)
                  ds
              in
              check_int "one ocamlopt for three requests" 1
                (Jit.compiler_invocations () - c0);
              List.iter (check_string "same key" (List.hd keys)) keys));
      qcase ~count:60 "blueprint specialization is the exact inverse of \
                       hoisting" Gen_prog.gen (fun p ->
          let bp = Blueprint.of_block p.Gen_prog.block in
          let back = Blueprint.specialize bp in
          String.equal
            (Stmt.block_to_string p.Gen_prog.block)
            (Stmt.block_to_string back));
      case "C backend runs lu and conv bitwise equal to the interpreter"
        (fun () ->
          require_cc ();
          List.iter
            (fun (name, seed) ->
              let e = entry name in
              let bindings = e.Blockability.default_bindings in
              let env_i = Kernel_def.make_env e.kernel ~bindings ~seed in
              Exec.run env_i e.kernel.Kernel_def.block;
              let env_c = Kernel_def.make_env e.kernel ~bindings ~seed in
              let bp =
                Blueprint.of_block ~shapes:e.kernel.Kernel_def.shapes
                  e.kernel.Kernel_def.block
              in
              let l =
                ok_or_fail "cc compile"
                  (Cc.compile_blueprint ~name:(name ^ "_c") bp)
              in
              ok_or_fail "cc run"
                (Cc.run
                   ~bindings:(bindings @ bp.Blueprint.bindings)
                   l.Cc.fn env_c);
              match Env.diff ~only:e.kernel.Kernel_def.traced env_i env_c with
              | None -> ()
              | Some m -> Alcotest.failf "%s: %s" name m)
            [ ("lu", 11); ("conv", 5); ("givens", 3) ]);
      case "C backend writes scalars and INTEGER arrays back" (fun () ->
          require_cc ();
          let block =
            [
              Stmt.Iassign ("T", [], Expr.(mul (var "N") (int 2)));
              Stmt.Iassign ("K", [ B.i 2 ], Expr.(add (var "N") (int 1)));
              Stmt.Assign ("S", [], B.(fc 1.5 +. fc 2.0));
            ]
          in
          let env = simple_env ~n:4 in
          Env.add_iarray env "K" [ (1, 3) ];
          let bp = Blueprint.of_block block in
          let l = ok_or_fail "cc compile" (Cc.compile_blueprint ~name:"wb" bp) in
          ok_or_fail "cc run"
            (Cc.run ~bindings:bp.Blueprint.bindings l.Cc.fn env);
          check_int "T" 8 (Env.iscalar env "T");
          check_int "K(2)" 5 (Env.get_i env "K" [ 2 ]);
          check_bool "S" true (Float.equal (Env.fscalar env "S") 3.5));
      case "C backend fails like the interpreter (zero step, negative SQRT)"
        (fun () ->
          require_cc ();
          let run block =
            let env = simple_env ~n:4 in
            let bp = Blueprint.of_block block in
            let l =
              ok_or_fail "cc compile" (Cc.compile_blueprint ~name:"fail" bp)
            in
            Cc.run ~bindings:bp.Blueprint.bindings l.Cc.fn env
          in
          (match
             run
               [
                 Stmt.Loop
                   {
                     index = "I";
                     lo = Expr.int 1;
                     hi = Expr.var "N";
                     step = Expr.int 0;
                     body = [ Stmt.Assign ("S", [], B.fc 1.0) ];
                   };
               ]
           with
          | Ok () -> Alcotest.fail "zero step accepted"
          | Error m -> check_bool "zero step message" true (contains m "zero step"));
          match
            run [ Stmt.Assign ("S", [], Stmt.Fcall ("SQRT", [ B.fc (-4.0) ])) ]
          with
          | Ok () -> Alcotest.fail "negative SQRT accepted"
          | Error m ->
              check_bool "sqrt message" true (contains m "SQRT of negative"));
      case "C artifacts are cached (memo + disk) and keyed per backend"
        (fun () ->
          require_cc ();
          with_private_cache (fun () ->
              let bp =
                Blueprint.of_block [ Stmt.Assign ("S", [], B.fc 9.0625) ]
              in
              let c0 = Cc.invocations () in
              let l1 =
                ok_or_fail "compile" (Cc.compile_blueprint ~name:"cache" bp)
              in
              let l2 =
                ok_or_fail "compile" (Cc.compile_blueprint ~name:"cache" bp)
              in
              check_int "one cc run" 1 (Cc.invocations () - c0);
              check_bool "memo hit" true (l2.Cc.disposition = Jit.Memo);
              check_bool "so artifact" true
                (Filename.check_suffix l1.Cc.so ".so");
              check_bool "disk stats count .so" true
                ((Jit.disk_stats ()).Jit.entries >= 1)));
      case "backend registry resolves tags" (fun () ->
          check_bool "ocaml" true (Option.is_some (Backend.of_tag "ocaml"));
          check_bool "c" true (Option.is_some (Backend.of_tag "c"));
          check_bool "unknown" true (Option.is_none (Backend.of_tag "rust"));
          check_bool "names" true (Backend.names = [ "ocaml"; "c" ]));
      case "BLOCKC_JIT_DISK_CAP prunes oldest artifacts and counts evictions"
        (fun () ->
          require_native ();
          with_private_cache (fun () ->
              let saved_cap =
                Option.value (Sys.getenv_opt "BLOCKC_JIT_DISK_CAP") ~default:""
              in
              Unix.putenv "BLOCKC_JIT_DISK_CAP" "1";
              Fun.protect
                ~finally:(fun () ->
                  Unix.putenv "BLOCKC_JIT_DISK_CAP" saved_cap)
                (fun () ->
                  let e0 = Jit.disk_evictions () in
                  let compile c =
                    ok_or_fail "compile"
                      (Jit.compile_blueprint ~name:"cap_probe"
                         (Blueprint.of_block [ Stmt.Assign ("S", [], B.fc c) ]))
                  in
                  let _l1 = compile 4.125 in
                  let l2 = compile 5.125 in
                  (* The cap (1 byte) forces every artifact but the one
                     just written out of the cache. *)
                  let stats = Jit.disk_stats () in
                  check_int "only the newest artifact remains" 1
                    stats.Jit.entries;
                  check_bool "evictions counted" true
                    (Jit.disk_evictions () - e0 >= 1);
                  check_bool "survivor is the newest" true
                    (Sys.file_exists l2.Jit.cmxs))));
    ] )
