open Helpers

(* Fractal symbolic analysis: proof-tree goldens, fuel soundness, and
   curated-vs-derived agreement on the §5.2 pivoting derivation. *)

let ctx = Symbolic.assume_pos Symbolic.empty "N"

let check_lines = Alcotest.(check (list string))

(* Two writes to distinct constant locations commute; the checker must
   prune the infeasible [%p1 = 1 & %p1 = 2] case rather than report a
   phantom mismatch there. *)
let a1 = Stmt.Assign ("B", [ Expr.int 1 ], Stmt.Ref ("A", [ Expr.int 1 ]))
let a2 = Stmt.Assign ("B", [ Expr.int 2 ], Stmt.Ref ("A", [ Expr.int 2 ]))

let commuting_golden () =
  let r = Fsa.commute ~ctx [ a1 ] [ a2 ] in
  check_bool "equivalent" true (r.Fsa.verdict = Fsa.Equivalent);
  check_lines "proof tree"
    [
      "[direct] commute [B(1) = A(1)] with [B(2) = A(2)] -> equivalent: \
       reordered states match in all 3 feasible cases";
    ]
    (Fsa.proof_to_lines r.Fsa.proof)

(* Same location, different values: order is observable.  The verdict
   must be Unknown and the proof must name the distinguishing case. *)
let non_commuting_golden () =
  let c = Stmt.Assign ("A", [ Expr.int 1 ], Stmt.Fconst 1.0) in
  let d = Stmt.Assign ("A", [ Expr.int 1 ], Stmt.Fconst 2.0) in
  let r = Fsa.commute ~ctx [ c ] [ d ] in
  check_bool "not equivalent" true (r.Fsa.verdict <> Fsa.Equivalent);
  check_lines "proof tree"
    [
      "[direct] commute [A(1) = 1.0] with [A(1) = 2.0] -> unknown (A(%p1) \
       differs when 1 = %p1): A(%p1) differs when 1 = %p1";
    ]
    (Fsa.proof_to_lines r.Fsa.proof)

(* A row swap over a symbolic range against a point update outside the
   swapped rows: proved directly through the quantified store. *)
let swap_loop =
  Stmt.Loop
    {
      Stmt.index = "J";
      lo = Expr.int 1;
      hi = Expr.var "N";
      step = Expr.int 1;
      body =
        [
          Stmt.Assign ("T", [], Stmt.Ref ("A", [ Expr.int 1; Expr.var "J" ]));
          Stmt.Assign
            ( "A",
              [ Expr.int 1; Expr.var "J" ],
              Stmt.Ref ("A", [ Expr.int 2; Expr.var "J" ]) );
          Stmt.Assign ("A", [ Expr.int 2; Expr.var "J" ], Stmt.Fvar "T");
        ];
    }

let swap_vs_update () =
  let upd =
    Stmt.Assign
      ( "A",
        [ Expr.int 4; Expr.int 5 ],
        Stmt.Fbin
          ( Stmt.FSub,
            Stmt.Ref ("A", [ Expr.int 4; Expr.int 5 ]),
            Stmt.Ref ("A", [ Expr.int 3; Expr.int 5 ]) ) )
  in
  let ctx = Symbolic.assume_ge ctx (Affine.var "N") (Affine.const 6) in
  let r = Fsa.commute ~ctx [ swap_loop ] [ upd ] in
  check_bool "equivalent" true (r.Fsa.verdict = Fsa.Equivalent);
  match r.Fsa.proof with
  | { Fsa.rule = "direct"; verdict = Fsa.Equivalent; _ } -> ()
  | p -> Alcotest.failf "expected a direct proof, got:\n%s"
           (String.concat "\n" (Fsa.proof_to_lines p))

(* A scalar accumulation cannot be folded into a quantified store
   (T flows across iterations), so the direct comparison fails for
   complexity reasons and the fractal recursion must reduce the loop
   to a generic iteration before succeeding. *)
let accum_loop =
  Stmt.Loop
    {
      Stmt.index = "J";
      lo = Expr.int 1;
      hi = Expr.var "N";
      step = Expr.int 1;
      body =
        [
          Stmt.Assign
            ( "T",
              [],
              Stmt.Fbin (Stmt.FAdd, Stmt.Fvar "T", Stmt.Ref ("B", [ Expr.var "J" ]))
            );
        ];
    }

let point = Stmt.Assign ("A", [ Expr.int 1 ], Stmt.Fconst 2.0)

let fractal_recursion () =
  let r = Fsa.commute ~ctx [ point ] [ accum_loop ] in
  check_bool "equivalent" true (r.Fsa.verdict = Fsa.Equivalent);
  match r.Fsa.proof with
  | { Fsa.rule = "generic-iteration-right"; verdict = Fsa.Equivalent; children; _ }
    ->
      check_bool "has a sub-proof" true (children <> []);
      check_bool "sub-proof is direct" true
        (List.exists
           (fun (c : Fsa.proof) ->
             c.Fsa.rule = "direct" && c.Fsa.verdict = Fsa.Equivalent)
           children)
  | p ->
      Alcotest.failf "expected generic-iteration-right, got:\n%s"
        (String.concat "\n" (Fsa.proof_to_lines p))

(* Fuel exhaustion is always Unknown — at the root and mid-recursion.
   An out-of-fuel prover must never claim equivalence. *)
let fuel_soundness () =
  (let r = Fsa.commute ~fuel:0 ~ctx [ a1 ] [ a2 ] in
   match r.Fsa.verdict with
   | Fsa.Unknown m -> check_string "why" "fuel exhausted" m
   | Fsa.Equivalent -> Alcotest.fail "fuel 0 claimed equivalence");
  (* fuel 1: the direct attempt on the accumulation pair fails for
     complexity, and no fuel remains for the fractal step. *)
  let r = Fsa.commute ~fuel:1 ~ctx [ point ] [ accum_loop ] in
  match r.Fsa.verdict with
  | Fsa.Unknown _ -> ()
  | Fsa.Equivalent -> Alcotest.fail "fuel 1 claimed equivalence"

(* The acceptance gate: the default derive path blocks pivoting LU
   without consuming a single curated commutativity fact, and agrees
   with the curated matcher's derivation exactly. *)
let derived_matches_curated () =
  let saved = !Commutativity.use_curated in
  Fun.protect
    ~finally:(fun () -> Commutativity.use_curated := saved)
    (fun () ->
      Commutativity.use_curated := false;
      Commutativity.reset_lookups ();
      let derived =
        ok_or_fail "derived block_lu_pivot"
          (Blocker.block_lu_pivot ~block_size_var:"KS" K_lu_pivot.point_loop)
      in
      check_int "curated facts consumed on default path" 0
        (Commutativity.lookups ());
      Commutativity.use_curated := true;
      let curated =
        ok_or_fail "curated block_lu_pivot"
          (Blocker.block_lu_pivot ~block_size_var:"KS" K_lu_pivot.point_loop)
      in
      check_bool "curated table consulted in fallback mode" true
        (Commutativity.lookups () > 0);
      check_bool "derived and curated derivations agree" true
        (Stmt.equal derived.Blocker.result curated.Blocker.result))

let suite =
  ( "fsa",
    [
      case "commuting pair: golden proof tree" commuting_golden;
      case "non-commuting pair: golden proof tree" non_commuting_golden;
      case "swap loop vs point update: direct proof" swap_vs_update;
      case "fractal recursion: generic iteration" fractal_recursion;
      case "fuel exhaustion is Unknown, never Equivalent" fuel_soundness;
      case "derived prover: zero curated facts, same result"
        derived_matches_curated;
    ] )
