Golden emitted C99 for the same representative kernels as
codegen_emit.t, point and transformed.  The C backend shares the OCaml
emitter's analysis (flat column-major buffers, Env-binding preamble,
in-bounds proofs), so these goldens pin the second lowering of the same
contract: raw-pointer accesses exactly where the proofs fire, guarded
by the same parameter and declared-shape re-checks up front, and
checked bk_getf/bk_setf calls everywhere else.  Any intentional change
to the C emitter shows up here as a reviewable diff (promote with
`dune promote`).

LU, the paper's central example.  All accesses are proven in bounds:
every element access compiles to a raw a_a[...] dereference, and the
N >= 1 / declared-shape re-checks run once before the loops.

  $ blockc compile lu --emit c
  /* lu_point — C99 lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (libc only).  The host calls [blockc_cc_kernel]
     through the Cc dlopen stub; buffers are the Env's flat
     column-major arrays, passed in manifest (sorted-name) order. */
  
  #include <math.h>
  #include <setjmp.h>
  #include <stdio.h>
  
  static long imin(long a, long b) { return a <= b ? a : b; }
  static long imax(long a, long b) { return a >= b ? a : b; }
  
  /* OCaml Float.compare: total order, NaN equal to itself and below
     every other value. */
  static int fcmp(double a, double b) {
    if (a < b) return -1;
    if (a > b) return 1;
    if (a == b) return 0;
    if (isnan(a)) return isnan(b) ? 0 : -1;
    return 1;
  }
  
  static double fsign(double a, double b) {
    return b >= 0.0 ? fabs(a) : -fabs(a);
  }
  
  /* Runtime failures unwind to the entry point, which returns nonzero
     with the message in the caller's 256-byte buffer. */
  typedef struct { jmp_buf jb; char *err; } bk_ctx;
  
  static void bk_fail(bk_ctx *bk, const char *msg) {
    snprintf(bk->err, 256, "%s", msg);
    longjmp(bk->jb, 1);
  }
  
  static double bk_sqrt(bk_ctx *bk, double x) {
    if (x < 0.0) {
      snprintf(bk->err, 256, "SQRT of negative %g", x);
      longjmp(bk->jb, 1);
    }
    return sqrt(x);
  }
  
  static void bk_oob(bk_ctx *bk, const char *name) {
    snprintf(bk->err, 256, "out of bounds: %s", name);
    longjmp(bk->jb, 1);
  }
  
  static double bk_getf(bk_ctx *bk, const double *a, long off, long n,
                        const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_setf(bk_ctx *bk, double *a, long off, long n,
                      const char *name, double v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  static long bk_geti(bk_ctx *bk, const long *a, long off, long n,
                      const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_seti(bk_ctx *bk, long *a, long off, long n,
                      const char *name, long v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  int blockc_cc_kernel(double **fa, const long *fdim, long **ia,
                       const long *idim, double *fsc, long *isc,
                       char *err) {
    bk_ctx ctx0;
    bk_ctx *const bk = &ctx0;
    bk->err = err;
    if (setjmp(bk->jb)) return 1;
    (void) fa; (void) fdim; (void) ia; (void) idim;
    (void) fsc; (void) isc; (void) bk;
    double *const a_a = fa[0]; /* A */
    const long *const d_a = fdim + 0;
    const long l0_a = d_a[0];
    const long l1_a = d_a[2];
    const long t1_a = 1 * (d_a[1] - d_a[0] + 1);
    const long len_a = t1_a * (d_a[3] - d_a[2] + 1);
    (void) a_a; (void) len_a;
    long s_n = isc[0]; (void) s_n;
    if (s_n < 1) {
      snprintf(err, 256, "lu_point: unchecked accesses assume N >= 1");
      return 1;
    }
    if (!(d_a[0] == 1 && d_a[1] == s_n && d_a[2] == 1 && d_a[3] == s_n)) {
      snprintf(err, 256, "lu_point: A dims differ from the declared shape");
      return 1;
    }
    {
      const long lo_k = 1;
      const long hi_k = (s_n - 1);
      for (long i_k = lo_k; i_k <= hi_k; i_k++) {
        {
          const long lo_i = (i_k + 1);
          const long hi_i = s_n;
          for (long i_i = lo_i; i_i <= hi_i; i_i++) {
            a_a[((i_i - l0_a) + ((i_k - l1_a) * t1_a))] = (a_a[((i_i - l0_a) + ((i_k - l1_a) * t1_a))] / a_a[((i_k - l0_a) + ((i_k - l1_a) * t1_a))]);
          }
        }
        {
          const long lo_j = (i_k + 1);
          const long hi_j = s_n;
          for (long i_j = lo_j; i_j <= hi_j; i_j++) {
            {
              const long lo_i = (i_k + 1);
              const long hi_i = s_n;
              for (long i_i = lo_i; i_i <= hi_i; i_i++) {
                a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] = (a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] - (a_a[((i_i - l0_a) + ((i_k - l1_a) * t1_a))] * a_a[((i_k - l0_a) + ((i_j - l1_a) * t1_a))]));
              }
            }
          }
        }
      }
    }
    return 0;
  }

The derived blocked LU: MIN bounds lower to imin, the strip loop keeps
its proofs, and the general-step DO loop carries the zero-step guard.

  $ blockc compile lu --variant transformed --emit c
  /* lu_transformed — C99 lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (libc only).  The host calls [blockc_cc_kernel]
     through the Cc dlopen stub; buffers are the Env's flat
     column-major arrays, passed in manifest (sorted-name) order. */
  
  #include <math.h>
  #include <setjmp.h>
  #include <stdio.h>
  
  static long imin(long a, long b) { return a <= b ? a : b; }
  static long imax(long a, long b) { return a >= b ? a : b; }
  
  /* OCaml Float.compare: total order, NaN equal to itself and below
     every other value. */
  static int fcmp(double a, double b) {
    if (a < b) return -1;
    if (a > b) return 1;
    if (a == b) return 0;
    if (isnan(a)) return isnan(b) ? 0 : -1;
    return 1;
  }
  
  static double fsign(double a, double b) {
    return b >= 0.0 ? fabs(a) : -fabs(a);
  }
  
  /* Runtime failures unwind to the entry point, which returns nonzero
     with the message in the caller's 256-byte buffer. */
  typedef struct { jmp_buf jb; char *err; } bk_ctx;
  
  static void bk_fail(bk_ctx *bk, const char *msg) {
    snprintf(bk->err, 256, "%s", msg);
    longjmp(bk->jb, 1);
  }
  
  static double bk_sqrt(bk_ctx *bk, double x) {
    if (x < 0.0) {
      snprintf(bk->err, 256, "SQRT of negative %g", x);
      longjmp(bk->jb, 1);
    }
    return sqrt(x);
  }
  
  static void bk_oob(bk_ctx *bk, const char *name) {
    snprintf(bk->err, 256, "out of bounds: %s", name);
    longjmp(bk->jb, 1);
  }
  
  static double bk_getf(bk_ctx *bk, const double *a, long off, long n,
                        const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_setf(bk_ctx *bk, double *a, long off, long n,
                      const char *name, double v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  static long bk_geti(bk_ctx *bk, const long *a, long off, long n,
                      const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_seti(bk_ctx *bk, long *a, long off, long n,
                      const char *name, long v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  int blockc_cc_kernel(double **fa, const long *fdim, long **ia,
                       const long *idim, double *fsc, long *isc,
                       char *err) {
    bk_ctx ctx0;
    bk_ctx *const bk = &ctx0;
    bk->err = err;
    if (setjmp(bk->jb)) return 1;
    (void) fa; (void) fdim; (void) ia; (void) idim;
    (void) fsc; (void) isc; (void) bk;
    double *const a_a = fa[0]; /* A */
    const long *const d_a = fdim + 0;
    const long l0_a = d_a[0];
    const long l1_a = d_a[2];
    const long t1_a = 1 * (d_a[1] - d_a[0] + 1);
    const long len_a = t1_a * (d_a[3] - d_a[2] + 1);
    (void) a_a; (void) len_a;
    long s_ks = isc[0]; (void) s_ks;
    long s_n = isc[1]; (void) s_n;
    if (s_ks < 1) {
      snprintf(err, 256, "lu_transformed: unchecked accesses assume KS >= 1");
      return 1;
    }
    if (s_n < 1) {
      snprintf(err, 256, "lu_transformed: unchecked accesses assume N >= 1");
      return 1;
    }
    if (!(d_a[0] == 1 && d_a[1] == s_n && d_a[2] == 1 && d_a[3] == s_n)) {
      snprintf(err, 256, "lu_transformed: A dims differ from the declared shape");
      return 1;
    }
    {
      const long lo_k = 1;
      const long hi_k = (s_n - 1);
      const long st_k = s_ks;
      if (st_k == 0) bk_fail(bk, "DO K: zero step");
      const long n_k = (hi_k - lo_k + st_k) / st_k;
      long r_k = lo_k;
      for (long z_k = 0; z_k < n_k; z_k++) {
        const long i_k = r_k;
        {
          const long lo_kk = i_k;
          const long hi_kk = imin((i_k + (s_ks - 1)), (s_n - 1));
          for (long i_kk = lo_kk; i_kk <= hi_kk; i_kk++) {
            {
              const long lo_i = (i_kk + 1);
              const long hi_i = s_n;
              for (long i_i = lo_i; i_i <= hi_i; i_i++) {
                a_a[((i_i - l0_a) + ((i_kk - l1_a) * t1_a))] = (a_a[((i_i - l0_a) + ((i_kk - l1_a) * t1_a))] / a_a[((i_kk - l0_a) + ((i_kk - l1_a) * t1_a))]);
              }
            }
            {
              const long lo_j = (i_kk + 1);
              const long hi_j = imin(s_n, ((i_k + s_ks) + (-1)));
              for (long i_j = lo_j; i_j <= hi_j; i_j++) {
                {
                  const long lo_i = (i_kk + 1);
                  const long hi_i = s_n;
                  for (long i_i = lo_i; i_i <= hi_i; i_i++) {
                    a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] = (a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] - (a_a[((i_i - l0_a) + ((i_kk - l1_a) * t1_a))] * a_a[((i_kk - l0_a) + ((i_j - l1_a) * t1_a))]));
                  }
                }
              }
            }
          }
        }
        {
          const long lo_j = (i_k + s_ks);
          const long hi_j = s_n;
          for (long i_j = lo_j; i_j <= hi_j; i_j++) {
            {
              const long lo_i = (i_k + 1);
              const long hi_i = s_n;
              for (long i_i = lo_i; i_i <= hi_i; i_i++) {
                {
                  const long lo_kk = i_k;
                  const long hi_kk = imin((i_i - 1), imin((i_k + (s_ks - 1)), (s_n - 1)));
                  for (long i_kk = lo_kk; i_kk <= hi_kk; i_kk++) {
                    a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] = (a_a[((i_i - l0_a) + ((i_j - l1_a) * t1_a))] - (a_a[((i_i - l0_a) + ((i_kk - l1_a) * t1_a))] * a_a[((i_kk - l0_a) + ((i_j - l1_a) * t1_a))]));
                  }
                }
              }
            }
          }
        }
        r_k = i_k + st_k;
      }
    }
    return 0;
  }

Convolution: the unit-lower-bound output against a shifted kernel
window.  The W access subscript mixes both loop indices, and the proof
still grounds out, so the body stays raw.

  $ blockc compile conv --emit c
  /* conv_point — C99 lowered from the mini-Fortran IR by blockc's codegen.
     Self-contained (libc only).  The host calls [blockc_cc_kernel]
     through the Cc dlopen stub; buffers are the Env's flat
     column-major arrays, passed in manifest (sorted-name) order. */
  
  #include <math.h>
  #include <setjmp.h>
  #include <stdio.h>
  
  static long imin(long a, long b) { return a <= b ? a : b; }
  static long imax(long a, long b) { return a >= b ? a : b; }
  
  /* OCaml Float.compare: total order, NaN equal to itself and below
     every other value. */
  static int fcmp(double a, double b) {
    if (a < b) return -1;
    if (a > b) return 1;
    if (a == b) return 0;
    if (isnan(a)) return isnan(b) ? 0 : -1;
    return 1;
  }
  
  static double fsign(double a, double b) {
    return b >= 0.0 ? fabs(a) : -fabs(a);
  }
  
  /* Runtime failures unwind to the entry point, which returns nonzero
     with the message in the caller's 256-byte buffer. */
  typedef struct { jmp_buf jb; char *err; } bk_ctx;
  
  static void bk_fail(bk_ctx *bk, const char *msg) {
    snprintf(bk->err, 256, "%s", msg);
    longjmp(bk->jb, 1);
  }
  
  static double bk_sqrt(bk_ctx *bk, double x) {
    if (x < 0.0) {
      snprintf(bk->err, 256, "SQRT of negative %g", x);
      longjmp(bk->jb, 1);
    }
    return sqrt(x);
  }
  
  static void bk_oob(bk_ctx *bk, const char *name) {
    snprintf(bk->err, 256, "out of bounds: %s", name);
    longjmp(bk->jb, 1);
  }
  
  static double bk_getf(bk_ctx *bk, const double *a, long off, long n,
                        const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_setf(bk_ctx *bk, double *a, long off, long n,
                      const char *name, double v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  static long bk_geti(bk_ctx *bk, const long *a, long off, long n,
                      const char *name) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    return a[off];
  }
  
  static void bk_seti(bk_ctx *bk, long *a, long off, long n,
                      const char *name, long v) {
    if (off < 0 || off >= n) bk_oob(bk, name);
    a[off] = v;
  }
  
  int blockc_cc_kernel(double **fa, const long *fdim, long **ia,
                       const long *idim, double *fsc, long *isc,
                       char *err) {
    bk_ctx ctx0;
    bk_ctx *const bk = &ctx0;
    bk->err = err;
    if (setjmp(bk->jb)) return 1;
    (void) fa; (void) fdim; (void) ia; (void) idim;
    (void) fsc; (void) isc; (void) bk;
    double *const a_f1 = fa[0]; /* F1 */
    const long *const d_f1 = fdim + 0;
    const long l0_f1 = d_f1[0];
    const long len_f1 = 1 * (d_f1[1] - d_f1[0] + 1);
    (void) a_f1; (void) len_f1;
    double *const a_f2 = fa[1]; /* F2 */
    const long *const d_f2 = fdim + 2;
    const long l0_f2 = d_f2[0];
    const long len_f2 = 1 * (d_f2[1] - d_f2[0] + 1);
    (void) a_f2; (void) len_f2;
    double *const a_f3 = fa[2]; /* F3 */
    const long *const d_f3 = fdim + 4;
    const long l0_f3 = d_f3[0];
    const long len_f3 = 1 * (d_f3[1] - d_f3[0] + 1);
    (void) a_f3; (void) len_f3;
    long s_n1 = isc[0]; (void) s_n1;
    long s_n2 = isc[1]; (void) s_n2;
    long s_n3 = isc[2]; (void) s_n3;
    double f_dt = fsc[0]; (void) f_dt;
    if (s_n1 < 1) {
      snprintf(err, 256, "conv_point: unchecked accesses assume N1 >= 1");
      return 1;
    }
    if (s_n2 < 1) {
      snprintf(err, 256, "conv_point: unchecked accesses assume N2 >= 1");
      return 1;
    }
    if (s_n3 < 1) {
      snprintf(err, 256, "conv_point: unchecked accesses assume N3 >= 1");
      return 1;
    }
    if (!(d_f1[0] == 0 && d_f1[1] == imax(s_n1, s_n3))) {
      snprintf(err, 256, "conv_point: F1 dims differ from the declared shape");
      return 1;
    }
    if (!(d_f2[0] == (0 - s_n2) && d_f2[1] == imax(s_n2, s_n3))) {
      snprintf(err, 256, "conv_point: F2 dims differ from the declared shape");
      return 1;
    }
    if (!(d_f3[0] == 0 && d_f3[1] == s_n3)) {
      snprintf(err, 256, "conv_point: F3 dims differ from the declared shape");
      return 1;
    }
    {
      const long lo_i = 0;
      const long hi_i = s_n3;
      for (long i_i = lo_i; i_i <= hi_i; i_i++) {
        {
          const long lo_k = imax(0, (i_i - s_n2));
          const long hi_k = imin(i_i, s_n1);
          for (long i_k = lo_k; i_k <= hi_k; i_k++) {
            a_f3[(i_i - l0_f3)] = (a_f3[(i_i - l0_f3)] + ((f_dt * a_f1[(i_k - l0_f1)]) * a_f2[((i_i - i_k) - l0_f2)]));
          }
        }
      }
    }
    return 0;
  }
