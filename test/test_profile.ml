open Helpers

(* The memory-hierarchy profiler: reference attribution, level chaining,
   the stack-distance model vs simulation, and the block-size sweep. *)

let entry name = Option.get (Blockability.find name)

(* A tiny two-statement nest with a known set of reference sites. *)
let toy_block () =
  let open Expr in
  let a i j = Stmt.Ref ("A", [ i; j ]) in
  [
    Stmt.Loop
      {
        Stmt.index = "I";
        lo = Int 1;
        hi = Var "N";
        step = Int 1;
        body =
          [
            Stmt.Assign ("S", [], a (Var "I") (Int 1));
            Stmt.Loop
              {
                Stmt.index = "J";
                lo = Int 1;
                hi = Var "N";
                step = Int 1;
                body =
                  [
                    Stmt.Assign
                      ( "A",
                        [ Var "I"; Var "J" ],
                        Stmt.Fbin
                          (Stmt.FAdd, a (Var "I") (Var "J"), Stmt.Fvar "S") );
                  ];
              };
          ];
      };
  ]

let refmap_sites () =
  let sites = Exec.ref_sites (Exec.refmap (toy_block ())) in
  check_int "three array-reference sites" 3 (List.length sites);
  let s0 = List.nth sites 0 and s1 = List.nth sites 1 and s2 = List.nth sites 2 in
  check_int "ids are textual order" 0 s0.Exec.ref_id;
  check_int "ids are textual order" 2 s2.Exec.ref_id;
  check_string "outer read" "A(I,1)" s0.Exec.ref_text;
  Alcotest.(check (list string)) "outer nest" [ "I" ] s0.Exec.ref_loops;
  Alcotest.(check (list string)) "inner nest" [ "I"; "J" ] s1.Exec.ref_loops;
  check_bool "inner read is a read" true (s1.Exec.ref_kind = Ir_util.Read);
  check_bool "inner write is a write" true (s2.Exec.ref_kind = Ir_util.Write)

let profile_of name ?(bindings = []) ?machine () =
  let e = entry name in
  let machine = Option.value machine ~default:Arch.rs6000_540 in
  ok_or_fail "profile"
    (Blockability.profile
       ?bindings:(if bindings = [] then None else Some bindings)
       ~machine e)

let counts_sum_to_totals () =
  let point, transformed = profile_of "lu" () in
  List.iter
    (fun (kp : Blockability.kernel_profile) ->
      let l1 = snd (List.hd kp.kp_levels) in
      let sum f = List.fold_left (fun acc (r : Trace.ref_profile) -> acc + f r.counts) 0 kp.kp_refs in
      check_int "accesses attributed" l1.Cache.accesses
        (sum (fun c -> c.Trace.c_accesses));
      check_int "L1 misses attributed" l1.Cache.misses
        (sum (fun c -> c.Trace.c_l1_misses));
      check_int "classification attributed" l1.Cache.misses
        (sum (fun c -> c.Trace.c_cold + c.Trace.c_capacity + c.Trace.c_conflict));
      (* the loop rollup is a regrouping of the same counters *)
      let loop_sum =
        List.fold_left (fun acc (_, c) -> acc + c.Trace.c_accesses) 0 kp.kp_loops
      in
      check_int "loop rollup covers everything" l1.Cache.accesses loop_sum)
    [ point; transformed ]

let level_chaining () =
  let point, _ = profile_of "lu" () in
  match point.Blockability.kp_levels with
  | (_, l1) :: (_, l2) :: _ ->
      check_int "L2 sees exactly the L1 misses" l1.Cache.misses l2.Cache.accesses
  | _ -> Alcotest.fail "expected a two-level hierarchy"

(* Acceptance: the reuse-distance histogram's derived miss ratio for the
   configured L1 matches direct simulation within one percentage point,
   in-cache and out-of-cache, on LU and matmul. *)
let model_within_one_point () =
  List.iter
    (fun (name, bindings) ->
      let point, transformed = profile_of name ~bindings () in
      List.iter
        (fun (kp : Blockability.kernel_profile) ->
          let v = kp.Blockability.kp_validation in
          if v.Cost.v_ratio_gap > 0.01 then
            Alcotest.failf "%s %s: ratio gap %.4f > 0.01 (predicted %d, simulated %d)"
              name kp.kp_variant v.Cost.v_ratio_gap v.Cost.v_predicted
              v.Cost.v_simulated)
        [ point; transformed ])
    [
      ("lu", []);
      ("lu", [ ("N", 96) ]);
      (* footprint 576 lines > 512-line L1 *)
      ("matmul", []);
      ("matmul", [ ("N", 64); ("FREQ_PCT", 10) ]);
    ]

(* The histogram itself must reproduce the simulated misses when the L1
   is replayed fully-associatively — miss_curve at the L1's line count
   equals the validator's prediction. *)
let curve_consistent_with_validation () =
  let point, _ = profile_of "lu" ~bindings:[ ("N", 48) ] () in
  let lines = Arch.rs6000_540.Arch.cache_bytes / Arch.rs6000_540.Arch.line_bytes in
  match List.assoc_opt lines point.Blockability.kp_miss_curve with
  | Some m -> check_int "curve point = prediction" point.kp_validation.Cost.v_predicted m
  | None -> Alcotest.fail "miss curve does not include the L1 size"

(* The paper's qualitative result: blocking LU slashes L1 misses once
   the matrix no longer fits (Figures 5-6). *)
let blocking_reduces_misses () =
  let point, transformed = profile_of "lu" ~bindings:[ ("N", 96) ] () in
  let l1 kp = (snd (List.hd kp.Blockability.kp_levels)).Cache.misses in
  let p = l1 point and t = l1 transformed in
  if not (t * 2 < p) then
    Alcotest.failf "expected blocked misses << point misses, got %d vs %d" t p

let sweep_and_chooser () =
  let e = entry "lu" in
  let sweep =
    ok_or_fail "sweep"
      (Blockability.profile_sweep ~bindings:[ ("N", 48) ]
         ~machine:Arch.small_test ~blocks:[ 4; 8; 16 ] e)
  in
  check_int "one profile per block" 3 (List.length sweep);
  let misses =
    List.map
      (fun (b, (kp : Blockability.kernel_profile)) ->
        (b, (snd (List.hd kp.kp_levels)).Cache.misses))
      sweep
  in
  let chosen = Blocker.choose_block_size ~machine:Arch.small_test ~sweep:misses () in
  let best = List.fold_left (fun acc (_, m) -> min acc m) max_int misses in
  check_int "chooser picks a sweep minimum" best (List.assoc chosen misses);
  (* without a sweep it falls back to the footprint heuristic *)
  check_int "heuristic fallback"
    (Arch.block_size Arch.small_test ())
    (Blocker.choose_block_size ~machine:Arch.small_test ())

let sweep_rejects_unblocked () =
  match
    Blockability.profile_sweep ~blocks:[ 4; 8 ] (entry "matmul")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "matmul has no KS parameter; sweep must refuse"

let unattributed_without_refmap () =
  (* Driving the profiler hook without a refmap: everything lands in
     the unattributed bucket, nothing is lost. *)
  let block = toy_block () in
  let make () =
    let env = Env.create () in
    Env.set_iscalar env "N" 8;
    Env.set_fscalar env "S" 0.0;
    Env.add_farray env "A" [ (1, 8); (1, 8) ];
    env
  in
  let env = make () in
  let sites = Exec.ref_sites (Exec.refmap block) in
  let p = Trace.profiler Arch.small_test env ~arrays:[ "A" ] ~sites in
  Exec.run ~hook:(Trace.profile_hook p) env block;
  let other = Trace.unattributed p in
  let total = (snd (List.hd (Hier.level_stats (Trace.hier p)))).Cache.accesses in
  check_bool "something was traced" true (total > 0);
  check_int "all touches unattributed" total other.Trace.c_accesses;
  List.iter
    (fun (r : Trace.ref_profile) ->
      check_int "no per-site counts" 0 r.counts.Trace.c_accesses)
    (Trace.ref_profiles p);
  (* and with the refmap installed the bucket stays empty *)
  let env = make () in
  let p = Trace.run_profile Arch.small_test env ~arrays:[ "A" ] block in
  check_int "nothing unattributed with a refmap" 0
    (Trace.unattributed p).Trace.c_accesses

let suite =
  ( "profile",
    [
      case "refmap sites" refmap_sites;
      case "attribution sums to totals" counts_sum_to_totals;
      case "level chaining" level_chaining;
      case "stack model within 1 point of simulation" model_within_one_point;
      case "miss curve consistent with validation" curve_consistent_with_validation;
      case "blocking reduces LU misses" blocking_reduces_misses;
      case "sweep + block-size chooser" sweep_and_chooser;
      case "sweep refuses kernels without KS" sweep_rejects_unblocked;
      case "hook without refmap is unattributed" unattributed_without_refmap;
    ] )
