open Helpers
open Builder

(* ---------- Stmt: paths, substitution ---------- *)

let simple_nest () =
  do_ "I" (i 1) (v "N")
    [
      set1 "A" (v "I") (a1 "A" (v "I") +. fc 1.0);
      do_ "J" (i 1) (v "N") [ set1 "B" (v "J") (a1 "A" (v "I")) ];
    ]

let paths () =
  let block = [ simple_nest () ] in
  (match Stmt.get_at block [ Stmt.I 0; Stmt.I 1 ] with
  | Stmt.Loop l -> check_string "inner loop" "J" l.index
  | _ -> Alcotest.fail "expected loop");
  let replaced =
    Stmt.replace_at block [ Stmt.I 0; Stmt.I 1 ] [ setf "X" (fc 0.0) ]
  in
  match replaced with
  | [ Stmt.Loop l ] ->
      check_int "body size" 2 (List.length l.body);
      (match List.nth l.body 1 with
      | Stmt.Assign ("X", [], _) -> ()
      | _ -> Alcotest.fail "expected spliced assign")
  | _ -> Alcotest.fail "expected loop"

let path_if () =
  let block = [ if_else (feq (fv "X") (fc 0.0)) [ setf "A" (fc 1.0) ] [ setf "B" (fc 2.0) ] ] in
  (match Stmt.get_at block [ Stmt.I 0; Stmt.Then_; Stmt.I 0 ] with
  | Stmt.Assign ("A", [], _) -> ()
  | _ -> Alcotest.fail "then branch");
  match Stmt.get_at block [ Stmt.I 0; Stmt.Else_; Stmt.I 0 ] with
  | Stmt.Assign ("B", [], _) -> ()
  | _ -> Alcotest.fail "else branch"

let subst_shadowing () =
  let nest = simple_nest () in
  (* substituting I must not touch the loop's own body occurrences *)
  let s = Stmt.subst [ ("I", Expr.Int 99) ] nest in
  match s with
  | Stmt.Loop l ->
      check_bool "body untouched" true (Stmt.equal_block l.body
        (match nest with Stmt.Loop l0 -> l0.body | _ -> assert false))
  | _ -> Alcotest.fail "loop expected"

let subst_bounds () =
  let s = Stmt.subst [ ("N", Expr.Int 5) ] (simple_nest ()) in
  match s with
  | Stmt.Loop l -> check_bool "bound replaced" true (Expr.equal l.hi (Expr.Int 5))
  | _ -> Alcotest.fail "loop expected"

let find_loops () =
  let loops = Stmt.find_loops [ simple_nest () ] in
  Alcotest.(check (list string))
    "loop order" [ "I"; "J" ]
    (List.map (fun (_, (l : Stmt.loop)) -> l.index) loops)

(* ---------- Env / interpreter ---------- *)

let column_major () =
  let env = Env.create () in
  Env.add_farray env "A" [ (1, 3); (1, 4) ];
  Env.set_f env "A" [ 2; 1 ] 5.0;
  Env.set_f env "A" [ 1; 2 ] 7.0;
  check_int "linear (2,1)" 1 (Env.linear_index env "A" [ 2; 1 ]);
  check_int "linear (1,2)" 3 (Env.linear_index env "A" [ 1; 2 ]);
  let data = Env.farray_data env "A" in
  check_bool "storage" true (data.(1) = 5.0 && data.(3) = 7.0)

let lower_bounds () =
  let env = Env.create () in
  Env.add_farray env "F2" [ (-3, 3) ];
  Env.set_f env "F2" [ -3 ] 1.5;
  check_int "offset of lo" 0 (Env.linear_index env "F2" [ -3 ]);
  check_bool "readback" true (Env.get_f env "F2" [ -3 ] = 1.5)

let out_of_bounds () =
  let env = Env.create () in
  Env.add_farray env "A" [ (1, 3) ];
  Alcotest.check_raises "oob read" (Env.Error "A subscript 1 = 4 out of bounds [1,3]")
    (fun () -> Exec.run env [ setf "X" (a1 "A" (i 4)) ])

let loop_semantics () =
  let env = env_1d ~n:10 "A" in
  (* bounds evaluated once; empty loop body never runs *)
  Exec.run env [ do_ "I" (i 5) (i 4) [ set1 "A" (v "I") (fc 1.0) ] ];
  check_bool "empty loop" true (Array.for_all (fun x -> x = 0.0) (Env.farray_data env "A"));
  Exec.run env [ do_ "I" (i 1) (i 10) ~step:(i 3) [ set1 "A" (v "I") (fc 1.0) ] ];
  let a = Env.farray_data env "A" in
  check_bool "step 3 hits 1,4,7,10" true
    (a.(0) = 1.0 && a.(3) = 1.0 && a.(6) = 1.0 && a.(9) = 1.0 && a.(1) = 0.0)

let if_and_intrinsics () =
  let env = env_1d ~n:4 "A" in
  Exec.run env
    [
      setf "X" (fc 9.0);
      if_ (feq (fv "X") (fc 9.0)) [ set1 "A" (i 1) (sqrt_ (fv "X")) ];
      if_else (fne (fv "X") (fc 9.0))
        [ set1 "A" (i 2) (fc 1.0) ]
        [ set1 "A" (i 2) (fc 2.0) ];
      set1 "A" (i 3) (Stmt.Fcall ("ABS", [ fc (-3.5) ]));
    ];
  let a = Env.farray_data env "A" in
  check_bool "sqrt" true (a.(0) = 3.0);
  check_bool "else" true (a.(1) = 2.0);
  check_bool "abs" true (a.(2) = 3.5)

let int_arrays_and_idx_bounds () =
  let env = Env.create () in
  Env.add_iarray env "LB" [ (1, 2) ];
  Env.add_farray env "A" [ (1, 10) ];
  Exec.run env
    [
      Stmt.Iassign ("LB", [ i 1 ], i 3);
      Stmt.Iassign ("LB", [ i 2 ], i 5);
      do_ "K" (Expr.idx "LB" [ i 1 ]) (Expr.idx "LB" [ i 2 ]) [ set1 "A" (v "K") (fc 1.0) ];
    ];
  let a = Env.farray_data env "A" in
  check_bool "range 3..5" true (a.(1) = 0.0 && a.(2) = 1.0 && a.(4) = 1.0 && a.(5) = 0.0)

let env_copy_diff () =
  let env = env_1d ~n:4 "A" in
  let dup = Env.copy env in
  Env.set_f env "A" [ 1 ] 1.0;
  check_bool "copy isolated" true (Env.get_f dup "A" [ 1 ] = 0.0);
  check_bool "diff detects" true (Env.diff env dup <> None);
  check_bool "only filter" true (Env.diff ~only:[ "B" ] env dup = None)

let diff_is_bitwise () =
  (* -0.0 vs 0.0 and distinct NaN payloads must register as
     differences: the cross-backend differential relies on it. *)
  let make v =
    let env = env_1d ~n:2 "A" in
    Env.set_f env "A" [ 1 ] v;
    env
  in
  let nan2 = Int64.float_of_bits 0x7ff0000000000001L in
  check_bool "-0.0 differs from 0.0" true
    (Env.diff (make (-0.0)) (make 0.0) <> None);
  check_bool "-0.0 equals -0.0" true
    (Env.diff (make (-0.0)) (make (-0.0)) = None);
  check_bool "same NaN payload is equal" true
    (Env.diff (make Float.nan) (make Float.nan) = None);
  check_bool "distinct NaN payloads differ" true
    (Env.diff (make Float.nan) (make nan2) <> None);
  check_bool "tol still admits -0.0 vs 0.0" true
    (Env.diff ~tol:1e-12 (make (-0.0)) (make 0.0) = None)

let loop_index_protection () =
  let env = env_1d "A" in
  Alcotest.check_raises "loop index assignment"
    (Exec.Error "assignment to loop index I")
    (fun () -> Exec.run env [ do_ "I" (i 1) (i 2) [ seti "I" (i 5) ] ])

let suite =
  ( "stmt-interp",
    [
      case "paths get/replace" paths;
      case "paths into IF branches" path_if;
      case "substitution shadows loop index" subst_shadowing;
      case "substitution reaches bounds" subst_bounds;
      case "find_loops preorder" find_loops;
      case "column-major layout" column_major;
      case "non-unit lower bounds" lower_bounds;
      case "subscript bounds checked" out_of_bounds;
      case "DO loop semantics" loop_semantics;
      case "IF and intrinsics" if_and_intrinsics;
      case "integer arrays in bounds" int_arrays_and_idx_bounds;
      case "env copy and diff" env_copy_diff;
      case "diff compares floats bitwise" diff_is_bitwise;
      case "loop index is read-only" loop_index_protection;
    ] )
