open Helpers
open Builder

let ctx0 = Symbolic.assume_pos Symbolic.empty "N"

(* DO I = 1,N: A(I) = A(I-5) + B(I) — the paper's §2.2 example. *)
let shift5 =
  do_ "I" (i 1) (v "N")
    [ set1 "A" (v "I") (a1 "A" (v "I" -! i 5) +. a1 "B" (v "I")) ]

let strong_siv_distance () =
  let deps = Dependence.all ~ctx:ctx0 [ shift5 ] in
  let flow =
    List.filter (fun (d : Dependence.t) -> d.kind = Dependence.Flow) deps
  in
  check_int "one flow dep" 1 (List.length flow);
  match flow with
  | [ d ] -> (
      check_bool "carried" true (d.carrier = Some 0);
      match d.vector with
      | [ e ] -> check_bool "distance 5" true (e.dist = Some 5)
      | _ -> Alcotest.fail "vector arity")
  | _ -> assert false

let ziv_independent () =
  (* A(1) and A(2) never alias. *)
  let block =
    [
      do_ "I" (i 1) (v "N")
        [ set1 "A" (i 1) (a1 "A" (i 2) +. fc 1.0) ];
    ]
  in
  let deps = Dependence.all ~ctx:ctx0 block in
  check_bool "no flow/anti between distinct constants" true
    (List.for_all
       (fun (d : Dependence.t) ->
         not
           (Stmt.equal_fexpr (Stmt.Ref ("A", d.source.subs)) (Stmt.Ref ("A", [ i 1 ]))
           && Stmt.equal_fexpr (Stmt.Ref ("A", d.sink.subs)) (Stmt.Ref ("A", [ i 2 ]))))
       deps)

let output_self_dep () =
  (* A(1) = I : every iteration writes the same cell -> carried output dep *)
  let block = [ do_ "I" (i 1) (v "N") [ set1 "A" (i 1) (Stmt.Of_int (v "I")) ] ] in
  let deps = Dependence.all ~ctx:ctx0 block in
  check_bool "carried output dep exists" true
    (List.exists
       (fun (d : Dependence.t) -> d.kind = Dependence.Output && d.carrier = Some 0)
       deps)

let no_self_dep_for_disjoint_writes () =
  let block = [ do_ "I" (i 1) (v "N") [ set1 "A" (v "I") (fc 0.0) ] ] in
  let deps = Dependence.all ~ctx:ctx0 block in
  check_bool "A(I) writes are independent" true
    (List.for_all (fun (d : Dependence.t) -> d.kind <> Dependence.Output) deps)

let gcd_test () =
  (* A(2I) vs A(2I+1): even vs odd cells, never equal. *)
  let block =
    [
      do_ "I" (i 1) (v "N")
        [ set1 "A" (i 2 *! v "I") (a1 "A" ((i 2 *! v "I") +! i 1)) ];
    ]
  in
  let deps = Dependence.all ~ctx:ctx0 block in
  check_bool "gcd disproves" true
    (List.for_all
       (fun (d : Dependence.t) ->
         d.kind = Dependence.Input || d.source.subs = d.sink.subs)
       deps)

(* Oracle cross-check: analysis must be conservative on the real kernels. *)
let oracle_agreement name block bindings () =
  match Oracle.agrees ~bindings ~ctx:ctx0 block with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

let lu_deps_shape () =
  (* The strip-mined LU recurrence is found: KK loop does not distribute. *)
  let stripped =
    ok_or_fail "strip"
      (Strip_mine.apply ~block_size:(Expr.var "KS") ~new_index:"KK" K_lu.point_loop)
  in
  let kk = match stripped.body with [ Stmt.Loop l ] -> l | _ -> assert false in
  let ctx = Symbolic.of_loop_context [ stripped; kk ] in
  let g = Ddg.build ~ctx kk in
  check_int "two body statements" 2 g.n;
  check_bool "single recurrence" true (Ddg.distribution_order g = None);
  check_bool "preventing edges cross statements" true
    (Ddg.preventing_edges g 0 1 <> [])

(* Regression (found by `blockc fuzz`): a possibly-zero-trip inner loop
   must not leak its bounds facts to statements outside it.  K runs
   1..J-1, so "K nonempty" would imply J >= 2 — but the B statement
   also executes at J = 1, where the flow dependence
   B(I-J+1) -> B(I) at J = 1 is real.  A global loop-bounds context
   refuted it; the analysis now derives bounds per access pair. *)
let zero_trip_inner_loop_conservative () =
  let block =
    [
      do_ "I" (i 1) (v "N")
        [
          do_ "J" (v "I") (v "N")
            [
              set1 "B" ((v "I" -! v "J") +! i 1) (a1 "B" (v "I") +. fc 1.0);
              do_ "K" (i 1) (v "J" -! i 1) [ set1 "A" (i 1) (a1 "A" (i 1)) ];
            ];
        ];
    ]
  in
  let deps = Dependence.all ~ctx:ctx0 block in
  check_bool "flow B(I-J+1) -> B(I) kept" true
    (List.exists
       (fun (d : Dependence.t) ->
         d.kind = Dependence.Flow
         && String.equal d.source.array "B"
         && d.source.kind = Ir_util.Write)
       deps);
  match Oracle.agrees ~bindings:[ ("N", 2) ] ~ctx:ctx0 block with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "oracle disagrees: %s" m

(* Random-subscript oracle fuzz: two references with random affine
   subscripts inside a fixed depth-2 nest. *)
let gen_sub =
  let open QCheck2.Gen in
  let* c1 = int_range 0 2 in
  let* c2 = int_range 0 2 in
  let* c0 = int_range (-2) 6 in
  return
    Expr.(add (add (mul (Int c1) (Var "I")) (mul (Int c2) (Var "J"))) (Int c0))

let gen_pair = QCheck2.Gen.pair gen_sub gen_sub

let fuzz_oracle (s1, s2) =
  let block =
    [
      do_ "I" (i 1) (i 5)
        [
          do_ "J" (i 1) (i 4)
            [ set1 "A" s1 (a1 "A" s2 +. fc 1.0) ];
        ];
    ]
  in
  (* subscripts must stay within the declared array *)
  let bindings = [] in
  match Oracle.agrees ~bindings ~ctx:Symbolic.empty block with
  | Ok _ -> true
  | Error _ -> false

let suite =
  ( "dependence",
    [
      case "strong SIV distance" strong_siv_distance;
      case "ZIV independence" ziv_independent;
      case "output self dependence" output_self_dep;
      case "disjoint writes" no_self_dep_for_disjoint_writes;
      case "GCD test" gcd_test;
      case "LU recurrence found" lu_deps_shape;
      case "zero-trip inner loop stays conservative"
        zero_trip_inner_loop_conservative;
      case "oracle: LU point"
        (oracle_agreement "lu" [ Stmt.Loop K_lu.point_loop ] [ ("N", 7) ]);
      case "oracle: aconv"
        (oracle_agreement "aconv"
           [ Stmt.Loop K_conv.aconv_loop ]
           [ ("N1", 8); ("N2", 3); ("N3", 9) ]);
      case "oracle: conv"
        (oracle_agreement "conv"
           [ Stmt.Loop K_conv.conv_loop ]
           [ ("N1", 8); ("N2", 3); ("N3", 9) ]);
      qcase ~count:60 "oracle fuzz on random subscripts" gen_pair fuzz_oracle;
    ] )
