Unknown kernels must fail with a clean non-zero exit and the catalogue
on stderr, because scripts drive these subcommands.

  $ blockc profile nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc explain nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc simulate nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc --explain nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

A known kernel profiles fine and the JSON carries the attribution and
the reuse histogram.

  $ blockc profile trisolve --json | tr ',' '\n' | grep -c '"ref":'
  18

  $ blockc profile trisolve --json | grep -o '"histogram"'
  "histogram"
  "histogram"

The exit convention is uniform: every kernel-taking subcommand resolves
the name the same way (exit 2 + catalogue), including show and derive.

  $ blockc show nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc derive nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

Unparseable input is exit 2 as well (unusable input, not a negative
analysis result).

  $ printf 'DO I = 1, N\n' > bad.f
  $ blockc parse bad.f
  bad.f:2: expected END DO
  [2]

  $ blockc lower bad.f
  bad.f:2: expected END DO
  [2]

The fuzzer validates --only before running, with the same exit-2 +
catalogue-on-stderr convention as unknown kernel names; a clean
fixed-seed run exits 0 with coverage counters.

  $ blockc fuzz --only nosuchpass --iters 1 --seed 1
  blockc: unknown pass 'nosuchpass'
  known passes: strip_mine, interchange, distribution, index_set_split, split_minmax, unroll_and_jam, scalar_replacement, scalar_expansion, if_inspection, commutativity, oracle, reparse
  [2]

  $ blockc fuzz --iters 20 --seed 42 --json | tr ',' '\n' | grep -o '"ok":true'
  "ok":true

Pivoting LU blocks through the derived fractal-symbolic-analysis
prover by default; --curated-commutativity (accepted by every
transformation-running command) falls back to the paper's fact table
and must land on the same program.

  $ blockc derive lu_pivot > derived.f
  $ blockc derive lu_pivot --curated-commutativity > curated.f
  $ cmp derived.f curated.f && echo same
  same

The native compile subcommand follows the same conventions: unknown
kernels exit 2 with the catalogue, --emit ocaml prints the lowered
source (pinned in codegen_emit.t), and a plain compile reports the
plugin path under the JIT cache plus the blueprint digest, cache
disposition and compile wall time (normalized here: the key hashes
the blueprint and the OCaml version, and timing varies).

  $ blockc compile nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_opt, lu_pivot, lu_pivot_opt, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc compile lu --emit ocaml | head -n 1
  (* lu_point — OCaml lowered from the mini-Fortran IR by blockc's codegen.

  $ blockc compile lu | sed -e 's/bk_[0-9a-f]*/bk_KEY/' -e 's|-> .*_build|-> _build|' -e 's|(blueprint [0-9a-f]*, [a-z]*, [0-9.]*s)|(blueprint BP, DISPOSITION, TIME)|'
  compiled lu_point -> _build/.jitcache/bk_KEY.cmxs (blueprint BP, DISPOSITION, TIME)

  $ blockc compile lu --json | tr ',' '\n' | grep -o '"kernel":"lu"\|"blueprint":\|"disposition":\|"compile_s":\|"cached":'
  "kernel":"lu"
  "blueprint":
  "disposition":
  "compile_s":
  "cached":
