Unknown kernels must fail with a clean non-zero exit and the catalogue
on stderr, because scripts drive these subcommands.

  $ blockc profile nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_pivot, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc explain nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_pivot, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc simulate nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_pivot, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

  $ blockc --explain nosuch
  blockc: unknown kernel 'nosuch'
  known kernels: lu, lu_pivot, trisolve, cholesky, matmul, givens, aconv, conv, householder
  [2]

A known kernel profiles fine and the JSON carries the attribution and
the reuse histogram.

  $ blockc profile trisolve --json | tr ',' '\n' | grep -c '"ref":'
  18

  $ blockc profile trisolve --json | grep -o '"histogram"'
  "histogram"
  "histogram"
