The serve daemon speaks newline-delimited JSON over stdio.  One worker
keeps responses in request order (with more workers, clients match by
id).  Only deterministic operations here; compile/execute/batch are
covered by the unit tests and the CI smoke step.

Every response carries telemetry (a fresh trace_id and the server
timing breakdown); the first sed strips those non-deterministic fields,
and it must run before the greedy reason-normalizing one.

  $ printf '%s\n' \
  >   '{"id":1,"op":"ping"}' \
  >   '{"id":2,"op":"frobnicate"}' \
  >   '{"id":3}' \
  >   'not json' \
  >   '{"id":4,"op":"derive","kernel":"householder"}' \
  >   '{"id":5,"op":"shutdown"}' \
  >   | blockc serve --workers 1 \
  >   | sed -e 's|,"trace_id":"[0-9a-f]*","server":{[^}]*}||' \
  >         -e 's|"reason":".*"|"reason":"..."|'
  {"id":1,"ok":true,"pong":true}
  {"id":2,"ok":false,"error":"unknown op \"frobnicate\""}
  {"id":3,"ok":false,"error":"missing \"op\""}
  {"ok":false,"error":"parse error: at byte 0: expected null"}
  {"id":4,"ok":true,"kernel":"householder","blockable":false,"reason":"..."}
  {"id":5,"ok":true,"stopping":true}

The telemetry fields themselves: every response line has a hex
trace_id, all four server timings, and the request's GC deltas
(collection deltas can only grow, but the word deltas may go negative
when a collection runs mid-request, hence the optional minus signs).

  $ printf '%s\n' '{"id":1,"op":"ping"}' '{"id":2,"op":"shutdown"}' \
  >   | blockc serve --workers 1 \
  >   | grep -c '"trace_id":"[0-9a-f]*","server":{"queue_ns":[0-9]*,"compile_ns":[0-9]*,"exec_ns":[0-9]*,"total_ns":[0-9]*,"minor_gcs":[0-9]*,"major_gcs":[0-9]*,"promoted_words":[0-9]*,"allocated_words":-\?[0-9]*}'
  2

The flight recorder ring is sized by BLOCKC_RECORDER_CAP at startup;
the dump op reports the capacity in effect.

  $ printf '%s\n' '{"id":1,"op":"dump"}' '{"id":2,"op":"shutdown"}' \
  >   | BLOCKC_RECORDER_CAP=8 blockc serve --workers 1 \
  >   | grep -c '"capacity":8'
  1

The metrics op returns the Prometheus exposition with per-op latency
summaries (the daemon switches metrics on at startup); the dump op
flushes the flight recorder.

  $ printf '%s\n' '{"id":1,"op":"ping"}' '{"id":2,"op":"metrics"}' '{"id":3,"op":"shutdown"}' \
  >   | blockc serve --workers 1 > serve_metrics.out
  $ grep -c 'blockc_serve_requests_total' serve_metrics.out
  1
  $ grep -c 'blockc_serve_request_ns{op=\\"ping\\",quantile=\\"0.99\\"}' serve_metrics.out
  1
  $ printf '%s\n' '{"id":1,"op":"ping"}' '{"id":2,"op":"dump"}' '{"id":3,"op":"shutdown"}' \
  >   | blockc serve --workers 1 | grep -c '"events":\[{'
  1

A shutdown ends the loop even when more input follows, and the exit is
clean.

  $ printf '%s\n' '{"op":"shutdown"}' '{"op":"ping"}' | blockc serve --workers 1 \
  >   | sed -e 's|,"trace_id":"[0-9a-f]*","server":{[^}]*}||'
  {"ok":true,"stopping":true}

A socket path still owned by a live daemon is refused outright; a
stale socket file left behind by a crashed daemon (SIGKILL skips the
unlink-on-exit) is detected with a connect probe, unlinked, and the
path reclaimed.

  $ blockc serve --socket d.sock --workers 1 2>/dev/null &
  $ DPID=$!
  $ for i in $(seq 100); do test -S d.sock && break; sleep 0.1; done
  $ blockc serve --socket d.sock
  blockc serve: socket d.sock is in use by a running daemon
  [2]
  $ kill -9 $DPID; wait $DPID 2>/dev/null || true
  $ test -S d.sock && echo the stale socket file remains
  the stale socket file remains
  $ blockc serve --socket d.sock --workers 1 2>/dev/null &
  $ DPID=$!
  $ for i in $(seq 100); do blockc stats --socket d.sock >/dev/null 2>&1 && break; sleep 0.1; done
  $ blockc stats --socket d.sock | grep -c '^blockc_serve_requests_total'
  1
  $ kill -9 $DPID; wait $DPID 2>/dev/null || true
