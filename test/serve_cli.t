The serve daemon speaks newline-delimited JSON over stdio.  One worker
keeps responses in request order (with more workers, clients match by
id).  Only deterministic operations here; compile/execute/batch are
covered by the unit tests and the CI smoke step.

  $ printf '%s\n' \
  >   '{"id":1,"op":"ping"}' \
  >   '{"id":2,"op":"frobnicate"}' \
  >   '{"id":3}' \
  >   'not json' \
  >   '{"id":4,"op":"derive","kernel":"householder"}' \
  >   '{"id":5,"op":"shutdown"}' \
  >   | blockc serve --workers 1 | sed -e 's|"reason":".*"|"reason":"..."|'
  {"id":1,"ok":true,"pong":true}
  {"id":2,"ok":false,"error":"unknown op \"frobnicate\""}
  {"id":3,"ok":false,"error":"missing \"op\""}
  {"ok":false,"error":"parse error: at byte 0: expected null"}
  {"id":4,"ok":true,"kernel":"householder","blockable":false,"reason":"..."}
  {"id":5,"ok":true,"stopping":true}

A shutdown ends the loop even when more input follows, and the exit is
clean.

  $ printf '%s\n' '{"op":"shutdown"}' '{"op":"ping"}' | blockc serve --workers 1
  {"ok":true,"stopping":true}
