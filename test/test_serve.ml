(* The serve daemon's request handlers, driven directly (no process,
   no socket): protocol shape, error paths, and batched-vs-sequential
   bitwise agreement.  The cram test serve_cli.t covers the stdio
   loop end to end. *)

open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pool = lazy (Pool.create ~domains:1)

let request line = fst (Serve.handle_line ~exec_pool:(Lazy.force pool) line)

let parsed line =
  ok_or_fail "response parses" (Json_min.parse (request line))

let field name = function
  | Json_min.Object kvs -> List.assoc_opt name kvs
  | _ -> None

let str name j =
  match field name j with
  | Some (Json_min.String s) -> s
  | _ -> Alcotest.failf "response field %s is not a string" name

let bool_field name j =
  match field name j with
  | Some (Json_min.Bool b) -> b
  | _ -> Alcotest.failf "response field %s is not a bool" name

let require_native () =
  match Jit.available () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "native codegen unavailable: %s" m

let suite =
  ( "serve",
    [
      case "ping echoes the id and pongs" (fun () ->
          let r = parsed {|{"id":41,"op":"ping"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "pong" true (bool_field "pong" r);
          match field "id" r with
          | Some (Json_min.Number n) ->
              check_int "id" 41 (int_of_float n)
          | _ -> Alcotest.fail "id not echoed");
      case "malformed JSON is an error response, not a crash" (fun () ->
          let r = parsed "{nope" in
          check_bool "ok:false" false (bool_field "ok" r);
          check_bool "names the parse error" true
            (contains (str "error" r) "parse error"));
      case "missing op and unknown kernel are reported" (fun () ->
          let r = parsed {|{"id":1}|} in
          check_bool "missing op" true (contains (str "error" r) "op");
          let r = parsed {|{"op":"compile","kernel":"nope"}|} in
          check_bool "unknown kernel" true
            (contains (str "error" r) "unknown kernel");
          check_bool "lists known kernels" true (contains (str "error" r) "lu"));
      case "kernels op lists the registry with blockability" (fun () ->
          let r = parsed {|{"op":"kernels"}|} in
          match field "kernels" r with
          | Some (Json_min.Array ks) ->
              let find name =
                List.find_opt
                  (fun k ->
                    match field "name" k with
                    | Some (Json_min.String s) -> s = name
                    | _ -> false)
                  ks
              in
              check_bool "has lu" true (find "lu" <> None);
              let hh = Option.get (find "householder") in
              check_bool "householder marked non-blockable" false
                (bool_field "blockable" hh)
          | _ -> Alcotest.fail "no kernels array");
      case "derive reports the householder rejection as a result" (fun () ->
          let r = parsed {|{"op":"derive","kernel":"householder"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "blockable:false" false (bool_field "blockable" r);
          check_bool "carries the reason" true
            (String.length (str "reason" r) > 0));
      case "shutdown acknowledges and stops" (fun () ->
          let resp, stop =
            Serve.handle_line
              ~exec_pool:(Lazy.force pool)
              {|{"id":9,"op":"shutdown"}|}
          in
          check_bool "stop" true stop;
          let r = ok_or_fail "parses" (Json_min.parse resp) in
          check_bool "stopping" true (bool_field "stopping" r));
      case "repeat compiles share one blueprint key and memoize" (fun () ->
          require_native ();
          let line = {|{"op":"compile","kernel":"trisolve","variant":"transformed"}|} in
          let r1 = parsed line in
          check_bool "ok" true (bool_field "ok" r1);
          let r2 = parsed line in
          check_string "one blueprint" (str "blueprint" r1)
            (str "blueprint" r2);
          check_string "memo on repeat" "memo" (str "disposition" r2));
      case "batch digests match sequential executes bitwise" (fun () ->
          require_native ();
          let exec n =
            str "digest"
              (parsed
                 (Printf.sprintf
                    {|{"op":"execute","kernel":"trisolve","bindings":{"N":%d}}|}
                    n))
          in
          let sequential = List.map exec [ 8; 12 ] in
          let r =
            parsed {|{"op":"batch","kernel":"trisolve","sizes":[8,12]}|}
          in
          check_bool "ok" true (bool_field "ok" r);
          match field "digests" r with
          | Some (Json_min.Array ds) ->
              let batched =
                List.map
                  (function Json_min.String s -> s | _ -> "?")
                  ds
              in
              List.iter2 (check_string "digest") sequential batched
          | _ -> Alcotest.fail "no digests array");
      case "empty and malformed batches are rejected" (fun () ->
          let r = parsed {|{"op":"batch","kernel":"lu","sizes":[]}|} in
          check_bool "empty rejected" false (bool_field "ok" r);
          let r = parsed {|{"op":"batch","kernel":"lu"}|} in
          check_bool "no items rejected" false (bool_field "ok" r);
          check_bool "explains the two spellings" true
            (contains (str "error" r) "bindings_list"));
    ] )
