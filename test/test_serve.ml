(* The serve daemon's request handlers, driven directly (no process,
   no socket): protocol shape, error paths, and batched-vs-sequential
   bitwise agreement.  The cram test serve_cli.t covers the stdio
   loop end to end. *)

open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pool = lazy (Pool.create ~domains:1 ())

let request line = fst (Serve.handle_line ~exec_pool:(Lazy.force pool) line)

let parsed line =
  ok_or_fail "response parses" (Json_min.parse (request line))

let field name = function
  | Json_min.Object kvs -> List.assoc_opt name kvs
  | _ -> None

let str name j =
  match field name j with
  | Some (Json_min.String s) -> s
  | _ -> Alcotest.failf "response field %s is not a string" name

let bool_field name j =
  match field name j with
  | Some (Json_min.Bool b) -> b
  | _ -> Alcotest.failf "response field %s is not a bool" name

let require_native () =
  match Jit.available () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "native codegen unavailable: %s" m

let suite =
  ( "serve",
    [
      case "ping echoes the id and pongs" (fun () ->
          let r = parsed {|{"id":41,"op":"ping"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "pong" true (bool_field "pong" r);
          match field "id" r with
          | Some (Json_min.Number n) ->
              check_int "id" 41 (int_of_float n)
          | _ -> Alcotest.fail "id not echoed");
      case "malformed JSON is an error response, not a crash" (fun () ->
          let r = parsed "{nope" in
          check_bool "ok:false" false (bool_field "ok" r);
          check_bool "names the parse error" true
            (contains (str "error" r) "parse error"));
      case "missing op and unknown kernel are reported" (fun () ->
          let r = parsed {|{"id":1}|} in
          check_bool "missing op" true (contains (str "error" r) "op");
          let r = parsed {|{"op":"compile","kernel":"nope"}|} in
          check_bool "unknown kernel" true
            (contains (str "error" r) "unknown kernel");
          check_bool "lists known kernels" true (contains (str "error" r) "lu"));
      case "kernels op lists the registry with blockability" (fun () ->
          let r = parsed {|{"op":"kernels"}|} in
          match field "kernels" r with
          | Some (Json_min.Array ks) ->
              let find name =
                List.find_opt
                  (fun k ->
                    match field "name" k with
                    | Some (Json_min.String s) -> s = name
                    | _ -> false)
                  ks
              in
              check_bool "has lu" true (find "lu" <> None);
              let hh = Option.get (find "householder") in
              check_bool "householder marked non-blockable" false
                (bool_field "blockable" hh)
          | _ -> Alcotest.fail "no kernels array");
      case "derive reports the householder rejection as a result" (fun () ->
          let r = parsed {|{"op":"derive","kernel":"householder"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "blockable:false" false (bool_field "blockable" r);
          check_bool "carries the reason" true
            (String.length (str "reason" r) > 0));
      case "shutdown acknowledges and stops" (fun () ->
          let resp, stop =
            Serve.handle_line
              ~exec_pool:(Lazy.force pool)
              {|{"id":9,"op":"shutdown"}|}
          in
          check_bool "stop" true stop;
          let r = ok_or_fail "parses" (Json_min.parse resp) in
          check_bool "stopping" true (bool_field "stopping" r));
      case "repeat compiles share one blueprint key and memoize" (fun () ->
          require_native ();
          let line = {|{"op":"compile","kernel":"trisolve","variant":"transformed"}|} in
          let r1 = parsed line in
          check_bool "ok" true (bool_field "ok" r1);
          let r2 = parsed line in
          check_string "one blueprint" (str "blueprint" r1)
            (str "blueprint" r2);
          check_string "memo on repeat" "memo" (str "disposition" r2));
      case "requests select a backend; digests are backend-independent"
        (fun () ->
          require_native ();
          let r = parsed {|{"op":"compile","kernel":"trisolve"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_string "default backend" "ocaml" (str "backend" r);
          check_string "artifact echoes cmxs" (str "cmxs" r)
            (str "artifact" r);
          let r = parsed {|{"op":"compile","kernel":"trisolve","backend":"x"}|} in
          check_bool "unknown backend refused" false (bool_field "ok" r);
          check_bool "error names the tags" true
            (contains (str "error" r) "ocaml | c");
          match Cc.available () with
          | Error _ -> ()
          | Ok () ->
              let exec backend =
                parsed
                  (Printf.sprintf
                     {|{"op":"execute","kernel":"trisolve","backend":"%s","bindings":{"N":9}}|}
                     backend)
              in
              let ro = exec "ocaml" and rc = exec "c" in
              check_bool "c execute ok" true (bool_field "ok" rc);
              check_string "backend echoed" "c" (str "backend" rc);
              check_string "same digest across backends" (str "digest" ro)
                (str "digest" rc));
      case "batch digests match sequential executes bitwise" (fun () ->
          require_native ();
          let exec n =
            str "digest"
              (parsed
                 (Printf.sprintf
                    {|{"op":"execute","kernel":"trisolve","bindings":{"N":%d}}|}
                    n))
          in
          let sequential = List.map exec [ 8; 12 ] in
          let r =
            parsed {|{"op":"batch","kernel":"trisolve","sizes":[8,12]}|}
          in
          check_bool "ok" true (bool_field "ok" r);
          match field "digests" r with
          | Some (Json_min.Array ds) ->
              let batched =
                List.map
                  (function Json_min.String s -> s | _ -> "?")
                  ds
              in
              List.iter2 (check_string "digest") sequential batched
          | _ -> Alcotest.fail "no digests array");
      case "batch items carry per-item timing and GC deltas" (fun () ->
          require_native ();
          let r =
            parsed {|{"op":"batch","kernel":"trisolve","sizes":[8,12,16]}|}
          in
          check_bool "ok" true (bool_field "ok" r);
          match (field "items" r, field "digests" r) with
          | Some (Json_min.Array items), Some (Json_min.Array ds) ->
              check_int "one item per request entry" 3 (List.length items);
              List.iter2
                (fun itm d ->
                  check_bool "item digest matches the digests array" true
                    (field "digest" itm = Some d);
                  List.iter
                    (fun k ->
                      match field k itm with
                      | Some (Json_min.Number n) ->
                          check_bool (k ^ " non-negative") true (n >= 0.0)
                      | _ -> Alcotest.failf "item field %s missing" k)
                    [
                      "ns";
                      "minor_gcs";
                      "major_gcs";
                      "promoted_words";
                      "allocated_words";
                    ])
                items ds
          | _ -> Alcotest.fail "no items / digests arrays");
      case "empty and malformed batches are rejected" (fun () ->
          let r = parsed {|{"op":"batch","kernel":"lu","sizes":[]}|} in
          check_bool "empty rejected" false (bool_field "ok" r);
          let r = parsed {|{"op":"batch","kernel":"lu"}|} in
          check_bool "no items rejected" false (bool_field "ok" r);
          check_bool "explains the two spellings" true
            (contains (str "error" r) "bindings_list"));
      case "every response carries trace and timing telemetry" (fun () ->
          let r = parsed {|{"id":5,"op":"ping"}|} in
          let trace = str "trace_id" r in
          check_bool "trace_id is a non-empty hex string" true
            (String.length trace > 0
            && String.for_all
                 (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
                 trace);
          match field "server" r with
          | Some (Json_min.Object timing) ->
              List.iter
                (fun k ->
                  match List.assoc_opt k timing with
                  | Some (Json_min.Number ns) ->
                      check_bool (k ^ " non-negative") true (ns >= 0.0)
                  | _ -> Alcotest.failf "server.%s missing" k)
                [
                  "queue_ns";
                  "compile_ns";
                  "exec_ns";
                  "total_ns";
                  "minor_gcs";
                  "major_gcs";
                  "promoted_words";
                  "allocated_words";
                ]
          | _ -> Alcotest.fail "no server timing object");
      case "requests that allocate report GC deltas" (fun () ->
          (* derive walks the whole transformation pipeline: plenty of
             minor-heap traffic, so allocated_words must come out > 0 *)
          let r = parsed {|{"op":"derive","kernel":"lu"}|} in
          check_bool "ok" true (bool_field "ok" r);
          match field "server" r with
          | Some (Json_min.Object timing) -> (
              match List.assoc_opt "allocated_words" timing with
              | Some (Json_min.Number w) ->
                  check_bool "allocated_words positive" true (w > 0.0)
              | _ -> Alcotest.fail "server.allocated_words missing")
          | _ -> Alcotest.fail "no server timing object");
      case "status reports JIT cache shape and sampler state" (fun () ->
          let r = parsed {|{"op":"status"}|} in
          check_bool "ok" true (bool_field "ok" r);
          let num k =
            match field k r with
            | Some (Json_min.Number n) -> n
            | _ -> Alcotest.failf "status field %s is not a number" k
          in
          List.iter
            (fun k -> check_bool (k ^ " non-negative") true (num k >= 0.0))
            [
              "compiler_invocations";
              "memo_size";
              "memo_hits";
              "memo_evictions";
              "disk_hits";
              "disk_entries";
              "disk_bytes";
              "disk_oldest_age_s";
              "dedup_waits";
              "disk_evictions";
              "cc_invocations";
              "sampler_hz";
              "sampler_samples";
            ];
          (match field "cc_available" r with
          | Some (Json_min.Bool _) -> ()
          | _ -> Alcotest.fail "cc_available is not a bool");
          (match field "sampler_running" r with
          | Some (Json_min.Bool _) -> ()
          | _ -> Alcotest.fail "sampler_running is not a bool");
          check_bool "cache dir named" true (String.length (str "cache_dir" r) > 0));
      case "flame op starts the sampler and renders folded stacks" (fun () ->
          if Obs.Sampler.running () then Obs.Sampler.stop ();
          Obs.Sampler.reset ();
          Fun.protect ~finally:(fun () ->
              Obs.Sampler.stop ();
              Obs.Sampler.reset ())
          @@ fun () ->
          let r = parsed {|{"op":"flame","hz":250}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "sampler left running" true (Obs.Sampler.running ());
          (match field "hz" r with
          | Some (Json_min.Number hz) ->
              check_bool "requested rate honoured" true (hz = 250.0)
          | _ -> Alcotest.fail "no hz field");
          (match field "samples" r with
          | Some (Json_min.Number n) -> check_bool "samples count" true (n >= 0.0)
          | _ -> Alcotest.fail "no samples field");
          (match field "folded" r with
          | Some (Json_min.String _) -> ()
          | _ -> Alcotest.fail "no folded field");
          (* give the ticker a good pile, then a reset readout drops it:
             after stopping, the survivor count must be far below what
             the pile had grown to *)
          Unix.sleepf 0.1;
          let before = Obs.Sampler.samples () in
          check_bool "ticker accumulated samples" true (before > 0);
          let r2 = parsed {|{"op":"flame","reset":true}|} in
          check_bool "reset readout ok" true (bool_field "ok" r2);
          (* a repeat flame with no hz keeps the running rate (ensure) *)
          let r3 = parsed {|{"op":"flame"}|} in
          (match field "hz" r3 with
          | Some (Json_min.Number hz) ->
              check_bool "rate sticky while running" true (hz = 250.0)
          | _ -> Alcotest.fail "no hz field on repeat");
          Obs.Sampler.stop ();
          check_bool "reset dropped the accumulation" true
            (Obs.Sampler.samples () < before));
      case "failures increment the labelled error counters" (fun () ->
          Obs.Metrics.set_enabled true;
          Fun.protect ~finally:(fun () ->
              Obs.Metrics.set_enabled false;
              Obs.Metrics.reset ())
          @@ fun () ->
          Obs.Metrics.reset ();
          let labelled cls =
            Obs.Metrics.count
              (Obs.Metrics.counter
                 (Obs.Metrics.labelled "serve.errors" [ ("class", cls) ]))
          in
          ignore (request "{nope");
          ignore (request {|{"id":1}|});
          ignore (request {|{"op":"frobnicate"}|});
          ignore (request {|{"op":"compile","kernel":"nope"}|});
          check_int "parse error counted" 1 (labelled "parse");
          check_int "missing op counted" 1 (labelled "missing_op");
          check_int "unknown op counted" 1 (labelled "unknown_op");
          check_int "bad request counted" 1 (labelled "request");
          check_int "total across classes" 4
            (Obs.Metrics.count (Obs.Metrics.counter "serve.errors")));
      case "metrics op exposes per-op latency quantiles" (fun () ->
          Obs.Metrics.set_enabled true;
          Fun.protect ~finally:(fun () ->
              Obs.Metrics.set_enabled false;
              Obs.Metrics.reset ())
          @@ fun () ->
          Obs.Metrics.reset ();
          ignore (request {|{"op":"ping"}|});
          let r = parsed {|{"op":"metrics"}|} in
          check_bool "ok" true (bool_field "ok" r);
          check_bool "metrics_enabled" true (bool_field "metrics_enabled" r);
          (* Json_min decodes escapes on parse, so the exposition text
             arrives with its real quotes and newlines *)
          let text = str "metrics" r in
          check_bool "request counter present" true
            (contains text "blockc_serve_requests_total");
          check_bool "overall latency summary present" true
            (contains text "blockc_serve_request_ns{quantile=");
          check_bool "per-op p99 present" true
            (contains text
               {|blockc_serve_request_ns{op="ping",quantile="0.99"}|}));
      case "dump op flushes the flight recorder" (fun () ->
          Obs.Recorder.clear ();
          ignore (request {|{"id":7,"op":"ping"}|});
          let r = parsed {|{"op":"dump"}|} in
          check_bool "ok" true (bool_field "ok" r);
          match (field "events" r, field "capacity" r) with
          | Some (Json_min.Array evs), Some (Json_min.Number cap) ->
              check_bool "ring noted the requests" true (List.length evs >= 1);
              check_int "capacity reported" (Obs.Recorder.capacity ())
                (int_of_float cap);
              let ping =
                List.find_opt
                  (fun ev ->
                    match field "args" ev with
                    | Some args -> (
                        match field "op" args with
                        | Some (Json_min.String s) -> s = "ping"
                        | _ -> false)
                    | _ -> false)
                  evs
              in
              check_bool "ping noted with its op" true (ping <> None);
              check_bool "events carry a trace id" true
                (String.length (str "trace" (Option.get ping)) > 0)
          | _ -> Alcotest.fail "no events array / capacity");
      case "batch fan-out is one connected trace" (fun () ->
          require_native ();
          let mem, events = Obs.memory () in
          Obs.set_sink mem;
          let p2 = Pool.create ~domains:2 () in
          Fun.protect ~finally:(fun () ->
              Obs.set_sink Obs.null;
              Pool.shutdown p2)
          @@ fun () ->
          let resp, _ =
            Serve.handle_line ~exec_pool:p2
              {|{"op":"batch","kernel":"trisolve","sizes":[8,10,12,14]}|}
          in
          let r = ok_or_fail "parses" (Json_min.parse resp) in
          check_bool "ok" true (bool_field "ok" r);
          let evs = events () in
          (* exactly one trace id across every event of the request *)
          let traces =
            List.sort_uniq compare
              (List.filter_map
                 (fun (e : Obs.event) ->
                   if e.trace <> 0 then Some e.trace else None)
                 evs)
          in
          check_int "one distinct trace" 1 (List.length traces);
          check_string "the response names that trace"
            (Obs.Ctx.id_hex (List.hd traces))
            (str "trace_id" r);
          (* and the span tree is connected: request -> batch -> chunks *)
          let find_begin name =
            List.find
              (fun (e : Obs.event) -> e.kind = Obs.Begin && e.name = name)
              evs
          in
          let req = find_begin "serve.request" in
          let batch = find_begin "serve.batch" in
          check_int "batch is a child of the request" req.span_id batch.parent;
          let chunks =
            List.filter
              (fun (e : Obs.event) ->
                e.kind = Obs.Begin && e.name = "par.chunk")
              evs
          in
          check_bool "fan-out produced chunk spans" true (chunks <> []);
          List.iter
            (fun (c : Obs.event) ->
              check_int "chunk is a child of the batch" batch.span_id c.parent)
            chunks;
          (* which lanes claim chunks is scheduling-dependent, but every
             chunk span must name the domain it actually ran on *)
          check_bool "chunk spans carry their domain track" true
            (List.for_all (fun (e : Obs.event) -> e.track >= 0) chunks));
    ] )
