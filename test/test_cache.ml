open Helpers

let direct_mapped_conflict () =
  (* 2 KB direct-mapped, 32-byte lines: addresses 0 and 2048 conflict. *)
  let c = Cache.create ~size_bytes:2048 ~line_bytes:32 ~assoc:1 in
  check_bool "cold miss" false (Cache.access c 0);
  check_bool "hit" true (Cache.access c 8);
  check_bool "conflict evicts" false (Cache.access c 2048);
  check_bool "and misses again" false (Cache.access c 0)

let associativity_helps () =
  let c = Cache.create ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 2048);
  check_bool "both resident" true (Cache.access c 0 && Cache.access c 2048)

let lru_order () =
  let c = Cache.create ~size_bytes:128 ~line_bytes:32 ~assoc:2 in
  (* one set spans addresses congruent mod 64; three conflicting lines *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 0);
  (* 64 is now LRU; inserting 128 evicts it *)
  ignore (Cache.access c 128);
  check_bool "0 survives" true (Cache.access c 0);
  check_bool "64 evicted" false (Cache.access c 64)

let spatial_locality () =
  let c = Cache.create ~size_bytes:65536 ~line_bytes:128 ~assoc:4 in
  for i = 0 to 1023 do
    ignore (Cache.access c (i * 8))
  done;
  let s = Cache.stats c in
  check_int "one miss per line" (1024 * 8 / 128) s.misses

let reset_works () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  ignore (Cache.access c 0);
  Cache.reset c;
  let s = Cache.stats c in
  check_int "zeroed" 0 s.accesses;
  check_bool "cold again" false (Cache.access c 0)

let bad_geometry () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Cache.create: sizes must be powers of two") (fun () ->
      ignore (Cache.create ~size_bytes:1000 ~line_bytes:32 ~assoc:1))

(* ---- classification / eviction accounting ---- *)

let eviction_count () =
  (* direct-mapped, 2 lines of 32 bytes: 0 and 64 share set 0 *)
  let c = Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 in
  ignore (Cache.access c 0);
  (* cold fill of an invalid way: no eviction *)
  ignore (Cache.access c 64);
  (* displaces 0 *)
  ignore (Cache.access c 0);
  (* displaces 64 *)
  let s = Cache.stats c in
  check_int "evictions" 2 s.evictions;
  check_int "all cold on unclassified (first touches)" 2 s.cold_misses

let conflict_classification () =
  (* Same geometry, classified: 0 and 64 ping-pong in one set while the
     other set sits empty — a fully-associative cache of 2 lines would
     hold both, so the repeat misses are conflicts, not capacity. *)
  let c = Cache.create_classified ~size_bytes:64 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check bool) "cold" true (Cache.access_classify c 0 = Cache.Cold);
  Alcotest.(check bool) "cold" true (Cache.access_classify c 64 = Cache.Cold);
  Alcotest.(check bool) "conflict" true
    (Cache.access_classify c 0 = Cache.Conflict);
  Alcotest.(check bool) "conflict" true
    (Cache.access_classify c 64 = Cache.Conflict);
  let s = Cache.stats c in
  check_int "misses split" s.misses
    (s.cold_misses + s.capacity_misses + s.conflict_misses);
  check_int "no capacity misses" 0 s.capacity_misses

let capacity_classification () =
  (* Fully associative 2-line cache, 3-line working set: the repeat miss
     has stack distance 2 >= capacity, so it is a capacity miss. *)
  let c = Cache.create_classified ~size_bytes:64 ~line_bytes:32 ~assoc:2 in
  ignore (Cache.access_classify c 0);
  ignore (Cache.access_classify c 32);
  ignore (Cache.access_classify c 64);
  Alcotest.(check bool) "capacity" true
    (Cache.access_classify c 0 = Cache.Capacity);
  check_int "conflict-free when fully associative" 0
    (Cache.stats c).conflict_misses

let full_associativity_no_conflicts () =
  (* With assoc = lines there is a single set; classification can never
     report a conflict, and misses equal the stack-distance prediction. *)
  let c = Cache.create_classified ~size_bytes:1024 ~line_bytes:32 ~assoc:32 in
  let r = Reuse.create () in
  List.iter
    (fun a ->
      ignore (Cache.access c a);
      ignore (Reuse.access r (a / 32)))
    [ 0; 32; 0; 4000; 512; 0; 32; 64; 96; 4000; 32 ];
  let s = Cache.stats c in
  check_int "no conflicts" 0 s.conflict_misses;
  check_int "misses = stack-distance misses" (Reuse.misses_for_lines r 32)
    s.misses

let straddling_access () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
  check_bool "within one line: one access" true
    (ignore (Cache.access_bytes c 0 ~bytes:8);
     (Cache.stats c).accesses = 1);
  (* 8 bytes starting at 28 overlap lines 0 and 1: two accesses *)
  ignore (Cache.access_bytes c 28 ~bytes:8);
  let s = Cache.stats c in
  check_int "straddle costs two" 3 s.accesses;
  check_int "line 0 hits, line 1 cold" 2 s.misses;
  check_bool "whole straddle hits once resident" true
    (Cache.access_bytes c 28 ~bytes:8)

let write_allocate () =
  (* The simulator is write-allocate (RS/6000 data cache): a write miss
     fills the line, so the read-back hits.  Reads and writes probe the
     same state — there is no distinction at the cache. *)
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
  check_bool "write misses" false (Cache.access c 100);
  check_bool "read-back hits" true (Cache.access c 96);
  check_bool "neighbour in the same line hits" true (Cache.access c 127);
  check_int "one fill" 1 (Cache.stats c).misses

(* ---- reuse-distance engine ---- *)

let reuse_hand_computed () =
  (* Trace A B C A B B A, one line each:
       A:cold  B:cold  C:cold  A:d=2  B:d=2  B:d=0  A:d=1 *)
  let r = Reuse.create () in
  let dists = List.map (Reuse.access r) [ 0; 1; 2; 0; 1; 1; 0 ] in
  Alcotest.(check (list int)) "distances" [ -1; -1; -1; 2; 2; 0; 1 ] dists;
  check_int "cold" 3 (Reuse.cold r);
  check_int "accesses" 7 (Reuse.accesses r);
  check_int "footprint" 3 (Reuse.distinct_lines r);
  check_int "max distance" 2 (Reuse.max_distance r);
  Alcotest.(check (list (pair int int)))
    "histogram" [ (0, 1); (1, 1); (2, 2) ] (Reuse.histogram r);
  (* Mattson: misses for every size from the one histogram. *)
  check_int "1-line cache" 6 (Reuse.misses_for_lines r 1);
  check_int "2-line cache" 5 (Reuse.misses_for_lines r 2);
  check_int "3-line cache" 3 (Reuse.misses_for_lines r 3);
  check_int "huge cache: only cold" 3 (Reuse.misses_for_lines r 1024);
  Alcotest.(check (list (pair int int)))
    "miss curve" [ (1, 6); (2, 5); (4, 3) ]
    (Reuse.miss_curve r ~max_lines:4)

let gen_trace =
  QCheck2.Gen.(list_size (int_range 0 500) (int_range 0 4095))

let suite =
  ( "cache",
    [
      case "direct-mapped conflicts" direct_mapped_conflict;
      case "associativity" associativity_helps;
      case "LRU replacement" lru_order;
      case "spatial locality" spatial_locality;
      case "reset" reset_works;
      case "geometry validation" bad_geometry;
      case "eviction accounting" eviction_count;
      case "conflict classification" conflict_classification;
      case "capacity classification" capacity_classification;
      case "full associativity has no conflicts" full_associativity_no_conflicts;
      case "line-straddling access" straddling_access;
      case "write-allocate" write_allocate;
      case "reuse distances (hand-computed)" reuse_hand_computed;
      qcase "stats are consistent" gen_trace (fun addrs ->
          let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          let s = Cache.stats c in
          s.accesses = List.length addrs
          && s.hits + s.misses = s.accesses
          && s.hits >= 0 && s.misses >= 0);
      qcase "repeating a short trace hits" gen_trace (fun addrs ->
          (* a trace touching < capacity distinct lines, replayed, all hits *)
          let distinct =
            List.sort_uniq Int.compare (List.map (fun a -> a / 32) addrs)
          in
          QCheck2.assume (List.length distinct <= 8);
          let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:32 in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          let before = (Cache.stats c).misses in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          (Cache.stats c).misses = before);
      qcase "classified misses split exactly" gen_trace (fun addrs ->
          let c =
            Cache.create_classified ~size_bytes:1024 ~line_bytes:32 ~assoc:2
          in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          let s = Cache.stats c in
          s.misses = s.cold_misses + s.capacity_misses + s.conflict_misses
          && s.accesses = s.hits + s.misses);
      qcase "fully-associative = stack-distance model" gen_trace (fun addrs ->
          (* the divergence the validator measures is exactly the
             conflict misses, so at full associativity it must be zero *)
          let c =
            Cache.create_classified ~size_bytes:1024 ~line_bytes:32 ~assoc:32
          in
          let r = Reuse.create () in
          List.iter
            (fun a ->
              ignore (Cache.access c a);
              ignore (Reuse.access r (a / 32)))
            addrs;
          let s = Cache.stats c in
          s.conflict_misses = 0 && s.misses = Reuse.misses_for_lines r 32);
    ] )
