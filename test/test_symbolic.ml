open Helpers

let av = Affine.var
let ac = Affine.const
let ( ++ ) = Affine.add
let ( -- ) = Affine.sub

(* The driver contexts these goals come from (§5.1): K in [1, N-1],
   KK in [K, K+KS-1], KS >= 1, N >= 1. *)
let lu_ctx =
  let ctx = Symbolic.empty in
  let ctx = Symbolic.assume_pos ctx "KS" in
  let ctx = Symbolic.assume_pos ctx "N" in
  let ctx = Symbolic.assume_ge ctx (av "K") (ac 1) in
  let ctx = Symbolic.assume_le ctx (av "K") (av "N" -- ac 1) in
  let ctx = Symbolic.assume_ge ctx (av "KK") (av "K") in
  Symbolic.assume_le ctx (av "KK") (av "K" ++ av "KS" -- ac 1)

let lu_goals () =
  let t = Symbolic.prove_le lu_ctx and f a b = not (Symbolic.prove_le lu_ctx a b) in
  check_bool "KK+1 <= K+KS" true (t (av "KK" ++ ac 1) (av "K" ++ av "KS"));
  check_bool "K+KS-1 < K+KS" true
    (Symbolic.prove_lt lu_ctx (av "K" ++ av "KS" -- ac 1) (av "K" ++ av "KS"));
  check_bool "K <= N-1" true (t (av "K") (av "N" -- ac 1));
  check_bool "not K+KS-1 <= N-1" true (f (av "K" ++ av "KS" -- ac 1) (av "N" -- ac 1));
  check_bool "K+1 > K" true (Symbolic.prove_gt lu_ctx (av "K" ++ ac 1) (av "K"));
  (* with the planning assumption the full-block fact becomes provable *)
  let plan = Symbolic.assume_le lu_ctx (av "K" ++ av "KS" -- ac 1) (av "N" -- ac 1) in
  check_bool "planning: K+KS-1 < N" true
    (Symbolic.prove_lt plan (av "K" ++ av "KS" -- ac 1) (av "N"))

let unknown_is_sound () =
  let ctx = Symbolic.empty in
  check_bool "nothing known" false (Symbolic.prove_ge ctx (av "A") (av "B"));
  check_bool "const" true (Symbolic.prove_ge ctx (ac 3) (ac 3));
  check_bool "const strict" true (Symbolic.prove_gt ctx (ac 4) (ac 3));
  check_bool "false const" false (Symbolic.prove_gt ctx (ac 3) (ac 3))

let compare_cases () =
  let ctx = Symbolic.assume_ge Symbolic.empty (av "X") (av "Y" ++ ac 2) in
  (match Symbolic.compare_ ctx (av "X") (av "Y") with
  | Symbolic.Gt -> ()
  | _ -> Alcotest.fail "expected Gt");
  match Symbolic.compare_ ctx (av "Y") (av "Z") with
  | Symbolic.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown"

let chained_facts () =
  (* A transitive chain the directed search must follow: A >= B, B >= C,
     C >= D+1 |- A > D. *)
  let ctx = Symbolic.empty in
  let ctx = Symbolic.assume_ge ctx (av "A") (av "B") in
  let ctx = Symbolic.assume_ge ctx (av "B") (av "C") in
  let ctx = Symbolic.assume_ge ctx (av "C") (av "D" ++ ac 1) in
  check_bool "chain" true (Symbolic.prove_gt ctx (av "A") (av "D"))

let of_loop_context_minmax () =
  let open Builder in
  let strip =
    match
      do_ "KK" (v "K") (Expr.min_ (v "K" +! v "KS" -! i 1) (v "N" -! i 1)) []
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let ctx = Symbolic.of_loop_context [ strip ] in
  check_bool "KK <= K+KS-1 from MIN arm" true
    (Symbolic.prove_le ctx (av "KK") (av "K" ++ av "KS" -- ac 1));
  check_bool "KK <= N-1 from MIN arm" true
    (Symbolic.prove_le ctx (av "KK") (av "N" -- ac 1));
  check_bool "KK >= K" true (Symbolic.prove_ge ctx (av "KK") (av "K"))

let composite_bounds () =
  (* The shapes unroll-and-jam leaves behind: a MIN buried under
     arithmetic in an upper bound still yields both one-sided facts. *)
  let open Builder in
  let l =
    match
      do_ "I" (v "K" +! i 1)
        (Expr.min_ (v "N") (v "K" +! v "KS") -! i 3)
        []
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let ctx = Symbolic.of_loop_context [ l ] in
  check_bool "I <= N-3" true
    (Symbolic.prove_le ctx (av "I") (av "N" -- ac 3));
  check_bool "I <= K+KS-3" true
    (Symbolic.prove_le ctx (av "I") (av "K" ++ av "KS" -- ac 3));
  check_bool "I >= K+1" true
    (Symbolic.prove_ge ctx (av "I") (av "K" ++ ac 1))

let disjunctive_cases () =
  (* lo = MAX(K+1, MIN(N, K+KS)+1): the MAX arms hold conjunctively but
     the MIN forks — I >= N+1 or I >= K+KS+1.  In either case I > KK
     for KK <= MIN(K+KS-1, N-1), which the single conjunctive context
     cannot establish. *)
  let open Builder in
  let l =
    match
      do_ "I"
        (Expr.max_ (v "K" +! i 1) (Expr.min_ (v "N") (v "K" +! v "KS") +! i 1))
        (v "N") []
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let kk_hi_arms = [ av "K" ++ av "KS" -- ac 1; av "N" -- ac 1 ] in
  let cases = Symbolic.with_loops_cases Symbolic.empty [ l ] in
  check_bool "more than one case" true (List.length cases > 1);
  let above_some_arm ctx =
    List.exists (fun arm -> Symbolic.prove_gt ctx (av "I") arm) kk_hi_arms
  in
  check_bool "I above the strip in every case" true
    (List.for_all above_some_arm cases);
  let conj = Symbolic.with_loops Symbolic.empty [ l ] in
  check_bool "conjunctive context cannot prove it" false
    (above_some_arm conj);
  check_bool "conjunctive core keeps the MAX arm" true
    (Symbolic.prove_ge conj (av "I") (av "K" ++ ac 1))

let gen_consts =
  QCheck2.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))

let suite =
  ( "symbolic",
    [
      case "LU driver goals" lu_goals;
      case "unknown is sound" unknown_is_sound;
      case "compare" compare_cases;
      case "transitive chains" chained_facts;
      case "loop context with MIN bound" of_loop_context_minmax;
      case "composite bounds decompose" composite_bounds;
      case "disjunctive MIN/MAX cases" disjunctive_cases;
      qcase "constants decide exactly" gen_consts (fun (a, b) ->
          let ctx = Symbolic.empty in
          Symbolic.prove_ge ctx (ac a) (ac b) = (a >= b));
      qcase "assumed facts are provable" gen_consts (fun (a, b) ->
          let lo, hi = (min a b, max a b) in
          let ctx = Symbolic.assume_ge Symbolic.empty (av "X") (ac lo) in
          let ctx = Symbolic.assume_le ctx (av "X") (ac hi) in
          Symbolic.prove_ge ctx (av "X") (ac lo)
          && Symbolic.prove_le ctx (av "X") (ac hi)
          && Symbolic.prove_le ctx (av "X") (ac (hi + 3)));
    ] )
