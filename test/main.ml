let () =
  Alcotest.run "blockability"
    [
      Test_expr.suite;
      Test_affine.suite;
      Test_symbolic.suite;
      Test_stmt_interp.suite;
      Test_cache.suite;
      Test_dependence.suite;
      Test_section.suite;
      Test_transform.suite;
      Test_fsa.suite;
      Test_drivers.suite;
      Test_native.suite;
      Test_lang.suite;
      Test_support.suite;
      Test_trace.suite;
      Test_profile.suite;
      Test_parallel.suite;
      Test_obs.suite;
      Test_fuzz.suite;
      Test_codegen.suite;
      Test_serve.suite;
    ]
