(* The multicore runtime and the parallel kernel variants.

   Two properties matter and both are checked across 1/2/4-domain pools
   and odd sizes that exercise remainder chunks:

   - agreement: every [*_par] kernel matches its serial counterpart —
     exactly for matmul/conv (per-column / per-row work is identical),
     within a [max_abs_diff] tolerance for the LU variants (they are
     bitwise equal too by construction, but the tolerance is the
     documented contract);
   - determinism: two runs of the same parallel kernel are bitwise
     identical — the chunk decomposition is computed from the range and
     pool size, never from timing. *)

open Helpers
open Linalg

let domain_counts = [ 1; 2; 4 ]

let with_pool d f =
  let p = Pool.create ~domains:d () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let lu_tol n = 1e-11 *. float_of_int n

(* (n, block) pairs chosen so trailing ranges hit every remainder case:
   width mod 4 in {0,1,2,3}, block >= n (empty trailing), block 1. *)
let lu_cases = [ (37, 8); (53, 16); (101, 12); (29, 64); (16, 1) ]

let lu_par_matches_serial () =
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          List.iter
            (fun (n, block) ->
              let a0 = random_diag_dominant ~seed:2 n in
              let serial = copy_mat a0 and par = copy_mat a0 in
              N_lu.blocked_opt ~block serial;
              N_lu.blocked_par ~pool ~block par;
              let d_err = max_abs_diff serial par in
              check_bool
                (Printf.sprintf "lu n=%d b=%d domains=%d (err %.2g)" n block d
                   d_err)
                true
                (d_err <= lu_tol n))
            lu_cases))
    domain_counts

let lu_pivot_par_matches_serial () =
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          List.iter
            (fun (n, block) ->
              let a0 = random ~seed:3 n n in
              let serial = copy_mat a0 and par = copy_mat a0 in
              N_lu_pivot.blocked_opt ~block serial;
              N_lu_pivot.blocked_par ~pool ~block par;
              let d_err = max_abs_diff serial par in
              check_bool
                (Printf.sprintf "lu_pivot n=%d b=%d domains=%d (err %.2g)" n
                   block d d_err)
                true
                (d_err <= lu_tol n))
            lu_cases))
    domain_counts

let matmul_par_exact () =
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          List.iter
            (fun n ->
              let a = random ~seed:4 n n in
              let b = N_matmul.make_b ~seed:5 ~n ~freq_pct:30 () in
              let c1 = create n n and c2 = create n n in
              N_matmul.uj_if ~a ~b ~c:c1;
              N_matmul.uj_if_par ~pool ~a ~b ~c:c2 ();
              check_bool
                (Printf.sprintf "matmul n=%d domains=%d" n d)
                true
                (max_abs_diff c1 c2 = 0.0))
            [ 1; 7; 33; 50 ]))
    domain_counts

let conv_par_exact () =
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          List.iter
            (fun (n1, n2, n3) ->
              let s1 = N_conv.make ~seed:6 ~n1 ~n2 ~n3 () in
              let s2 = N_conv.make ~seed:6 ~n1 ~n2 ~n3 () in
              N_conv.aconv_opt s1;
              N_conv.aconv_opt_par ~pool s2;
              check_bool
                (Printf.sprintf "aconv n1=%d n2=%d n3=%d domains=%d" n1 n2 n3 d)
                true
                (max_abs_diff_vec s1.f3 s2.f3 = 0.0))
            [ (30, 12, 41); (57, 57, 76); (5, 3, 2); (101, 40, 133) ]))
    domain_counts

(* Bitwise determinism: same inputs, same pool, twice in a row.  Chunk
   self-scheduling may assign chunks to different lanes each run; the
   output must not depend on it. *)
let par_runs_deterministic () =
  with_pool 4 (fun pool ->
      let n = 101 in
      let run_lu () =
        let x = copy_mat (random_diag_dominant ~seed:2 n) in
        N_lu.blocked_par ~pool ~block:12 x;
        x.a
      in
      check_bool "lu twice bitwise" true (run_lu () = run_lu ());
      let run_lup () =
        let x = copy_mat (random ~seed:3 n n) in
        N_lu_pivot.blocked_par ~pool ~block:12 x;
        x.a
      in
      check_bool "lu_pivot twice bitwise" true (run_lup () = run_lup ());
      let a = random ~seed:4 n n in
      let b = N_matmul.make_b ~seed:5 ~n ~freq_pct:25 () in
      let run_mm () =
        let c = create n n in
        N_matmul.uj_if_par ~pool ~a ~b ~c ();
        c.a
      in
      check_bool "matmul twice bitwise" true (run_mm () = run_mm ());
      let run_cv () =
        let s = N_conv.make ~seed:6 ~n1:77 ~n2:30 ~n3:99 () in
        N_conv.aconv_opt_par ~pool s;
        s.f3
      in
      check_bool "aconv twice bitwise" true (run_cv () = run_cv ()))

(* The chunk decomposition itself: disjoint, covering, ordered, aligned. *)
let gen_chunk_cfg =
  QCheck2.Gen.(
    let* lanes = int_range 1 9 in
    let* align = int_range 1 5 in
    let* lo = int_range (-50) 50 in
    let* len = int_range 1 500 in
    let* guided = bool in
    let* min_chunk = int_range 1 40 in
    return (lanes, align, lo, len, guided, min_chunk))

let chunks_partition (lanes, align, lo, len, guided, min_chunk) =
  let hi = lo + len - 1 in
  let chunking =
    if guided then Parallel.Guided { min_chunk } else Parallel.Static
  in
  let cs = Parallel.chunks ~lanes ~chunking ~align ~lo ~hi in
  let next = ref lo in
  let ok = ref (Array.length cs > 0) in
  Array.iter
    (fun (s, e) ->
      if s <> !next || e < s || (s - lo) mod align <> 0 then ok := false;
      next := e + 1)
    cs;
  !ok && !next = hi + 1

let pool_reusable_after_exception () =
  with_pool 3 (fun pool ->
      (try
         Parallel.for_ ~pool ~lo:0 ~hi:100 (fun s _ ->
             if s > 0 then failwith "boom")
       with Failure _ -> ());
      let hits = Array.make 64 0 in
      Parallel.for_ ~pool ~lo:0 ~hi:63 (fun s e ->
          for i = s to e do
            hits.(i) <- hits.(i) + 1
          done);
      check_bool "every index visited exactly once" true
        (Array.for_all (fun x -> x = 1) hits))

let default_pool_respects_env () =
  (* BLOCKABILITY_DOMAINS is read once at first use; we can only assert
     the default pool exists and has at least one lane without forking,
     but the parse itself is testable via a fresh non-default pool. *)
  check_bool "default pool has >= 1 lane" true (Pool.size (Pool.default ()) >= 1);
  check_int "explicit size respected" 3 (Pool.size (Pool.create ~domains:3 ()));
  check_int "non-positive clamped" 1 (Pool.size (Pool.create ~domains:0 ()))

(* Jobq observability wiring: the [<name>.depth] gauge must agree with
   [Queue.length] at every quiescent point (pushes and takes both set
   it under the queue mutex), and [<name>.queue_wait] must record one
   non-negative sample per consumed item even when producers and
   consumers sit on different domains. *)
let jobq_metrics_wiring () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  let q = Jobq.create ~name:"testq" () in
  let depth = Obs.Metrics.gauge "testq.depth" in
  let wait = Obs.Metrics.timer "testq.queue_wait" in
  for i = 1 to 5 do
    Jobq.push q i;
    check_bool "depth gauge matches length after push" true
      (Obs.Metrics.gauge_value depth = Jobq.length q)
  done;
  check_bool "peak saw the high-water mark" true
    (Obs.Metrics.gauge_peak depth = 5);
  for _ = 1 to 2 do
    ignore (Jobq.pop q);
    check_bool "depth gauge matches length after take" true
      (Obs.Metrics.gauge_value depth = Jobq.length q)
  done;
  (* concurrent push/drain: 2 producer and 2 consumer domains *)
  let total = 400 in
  let consumed = Atomic.make 0 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to total / 2 do
              Jobq.push q ((p * total) + i)
            done))
  in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () -> Jobq.drain q (fun _ -> Atomic.incr consumed)))
  in
  List.iter Domain.join producers;
  Jobq.close q;
  List.iter Domain.join consumers;
  check_bool "every item consumed" true (Atomic.get consumed = total + 3);
  check_bool "queue empty after the drain" true (Jobq.length q = 0);
  check_bool "depth gauge settles at 0 with the queue" true
    (Obs.Metrics.gauge_value depth = 0);
  check_bool "one queue_wait sample per consumed item" true
    (Obs.Metrics.calls wait = total + 5);
  check_bool "waits are non-negative across domains" true
    (Obs.Metrics.total_ns wait >= 0)

let pool_lane_busy_accounting () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  let pool = Pool.create ~name:"busytest" ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool)
  @@ fun () ->
  check_bool "one busy slot per lane (slot 0 = caller)" true
    (Array.length (Pool.lane_busy_ns pool) = 3);
  check_bool "fresh pool lanes idle" true
    (Array.for_all (fun ns -> ns = 0) (Pool.lane_busy_ns pool));
  let acc = Atomic.make 0 in
  Parallel.for_ ~pool ~lo:0 ~hi:50_000 (fun s e ->
      for _ = s to e do
        Atomic.incr acc
      done);
  check_bool "work all done" true (Atomic.get acc = 50_001);
  let busy = Pool.lane_busy_ns pool in
  check_bool "some lane accumulated busy time" true
    (Array.exists (fun ns -> ns > 0) busy);
  check_bool "busy counters never go negative" true
    (Array.for_all (fun ns -> ns >= 0) busy);
  check_bool "named pool keeps its name" true (Pool.name pool = "busytest");
  (* the cumulative per-lane gauges are published after every region *)
  let g0 =
    Obs.Metrics.gauge
      (Obs.Metrics.labelled "pool.lane_busy_ns"
         [ ("pool", "busytest"); ("lane", "0") ])
  in
  check_bool "caller-lane gauge mirrors the busy counter" true
    (Obs.Metrics.gauge_value g0 = busy.(0))

let suite =
  ( "parallel",
    [
      case "LU blocked_par matches blocked_opt" lu_par_matches_serial;
      case "pivoting LU blocked_par matches blocked_opt"
        lu_pivot_par_matches_serial;
      case "matmul uj_if_par bit-identical" matmul_par_exact;
      case "aconv_opt_par bit-identical" conv_par_exact;
      case "parallel runs are deterministic" par_runs_deterministic;
      qcase ~count:200 "chunk decomposition partitions the range"
        gen_chunk_cfg chunks_partition;
      case "pool survives exceptions" pool_reusable_after_exception;
      case "pool sizing" default_pool_respects_env;
      case "jobq depth gauge and wait timer wiring" jobq_metrics_wiring;
      case "pool per-lane busy accounting" pool_lane_busy_accounting;
    ] )
