open Helpers

(* The differential fuzzer itself (lib/check): fixed-seed smoke runs, so
   the suite is deterministic.  `blockc fuzz` / @fuzz-smoke run it at
   scale; here we pin the harness machinery. *)

let smoke () =
  let s = ok_or_fail "run" (Fuzz.run ~iters:50 ~seed:42 ()) in
  check_bool "clean" true (Fuzz.ok s);
  check_int "iters recorded" 50 s.iters;
  check_int "seed recorded" 42 s.seed;
  check_bool "every requested program ran" true (s.programs >= s.iters);
  (* The generator must keep exercising the paper's shape vocabulary. *)
  check_bool "triangular nests seen" true (s.triangular > 0);
  check_bool "trapezoidal (MIN/MAX) nests seen" true (s.trapezoidal > 0);
  check_bool "guarded nests seen" true (s.guarded > 0);
  check_bool "oracle cross-checked" true (s.oracle_checked > 0);
  check_int "every program reparsed" s.programs s.reparsed;
  let stat name =
    List.find (fun (p : Fuzz.pass_stat) -> String.equal p.ps_name name) s.passes
  in
  check_bool "strip-mine applied" true ((stat "strip_mine").ps_applied > 0);
  check_bool "if-inspection applied" true ((stat "if_inspection").ps_applied > 0);
  check_bool "scalar expansion applied" true
    ((stat "scalar_expansion").ps_applied > 0)

let only_filter () =
  (match Fuzz.run ~only:"no_such_pass" ~iters:1 ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown pass accepted");
  let s = ok_or_fail "run" (Fuzz.run ~only:"strip_mine" ~iters:20 ~seed:7 ()) in
  check_bool "clean" true (Fuzz.ok s);
  List.iter
    (fun (p : Fuzz.pass_stat) ->
      if not (String.equal p.ps_name "strip_mine") then
        check_int (p.ps_name ^ " skipped") 0 (p.ps_applied + p.ps_rejected))
    s.passes

let deterministic () =
  let run () = ok_or_fail "run" (Fuzz.run ~iters:25 ~seed:11 ()) in
  let a = run () and b = run () in
  check_int "same program count" a.Fuzz.programs b.Fuzz.programs;
  check_int "same guarded count" a.Fuzz.guarded b.Fuzz.guarded;
  List.iter2
    (fun (x : Fuzz.pass_stat) (y : Fuzz.pass_stat) ->
      check_int (x.ps_name ^ " applied") x.ps_applied y.ps_applied;
      check_int (x.ps_name ^ " rejected") x.ps_rejected y.ps_rejected)
    a.Fuzz.passes b.Fuzz.passes

let classify_shapes () =
  let p block =
    Gen_prog.classify { Gen_prog.block; bindings = [ ("N", 3) ]; fill_seed = 0 }
  in
  let open Builder in
  let rect =
    p [ do_ "I" (i 1) (v "N") [ do_ "J" (i 1) (v "N") [ set1 "A" (v "J") (fc 1.0) ] ] ]
  in
  check_bool "rect" true rect.rect;
  check_int "depth" 2 rect.depth;
  check_bool "rect not triangular" false rect.triangular;
  let tri =
    p [ do_ "I" (i 1) (v "N") [ do_ "J" (v "I") (v "N") [ set1 "A" (v "J") (fc 1.0) ] ] ]
  in
  check_bool "triangular" true tri.triangular;
  let trap =
    p
      [
        do_ "I" (i 1) (v "N")
          [
            do_ "J" (i 1) (Expr.min_ (v "I" +! i 2) (v "N"))
              [ set1 "A" (v "J") (fc 1.0) ];
          ];
      ]
  in
  check_bool "trapezoidal" true trap.trapezoidal;
  let guarded =
    p
      [
        do_ "I" (i 1) (v "N")
          [ if_ (fne (a1 "G" (v "I")) (fc 0.0)) [ set1 "A" (v "I") (fc 1.0) ] ];
      ]
  in
  check_bool "guarded" true guarded.guarded;
  check_bool "guarded not straightline" false guarded.straightline

let suite =
  ( "fuzz",
    [
      case "fixed-seed smoke run is clean" smoke;
      case "--only filters and validates pass names" only_filter;
      case "same seed, same trajectory" deterministic;
      (* Textual fixpoint: reparsing the printed form may normalize the
         expression trees, but printing again must be stable.  (Semantic
         equality of the reparse is the harness's own job, at scale.) *)
      qcase ~count:40 "generated programs print parseably" Gen_prog.gen
        (fun p ->
          match Parser.stmts (Gen_prog.print p) with
          | parsed ->
              String.equal
                (Stmt.block_to_string parsed)
                (Stmt.block_to_string p.block)
          | exception _ -> false);
      case "classification is structural" classify_shapes;
    ] )
