open Helpers
open Builder

(* Each primitive transformation is checked by interpreter equivalence on
   the real kernels, across sizes including ragged and degenerate ones. *)

let gen_size = QCheck2.Gen.(pair (int_range 1 20) (int_range 1 9))

(* ---- strip mining ---- *)

let strip_mine_equiv (n, ks) =
  let stripped =
    match Strip_mine.apply ~block_size:(Expr.var "KS") ~new_index:"KK" K_lu.point_loop with
    | Ok l -> l
    | Error _ -> QCheck2.assume_fail ()
  in
  Kernel_def.equivalent K_lu.kernel [ Stmt.Loop stripped ]
    ~extra:[ ("KS", ks) ] ~bindings:[ ("N", n) ] ~seed:1
  = Ok ()

let strip_mine_rejects () =
  let l =
    match do_ "I" (i 1) (v "N") ~step:(i 2) [] with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  check_bool "non-unit step refused" true
    (Result.is_error (Strip_mine.apply ~block_size:(i 4) ~new_index:"II" l));
  check_bool "name collision refused" true
    (Result.is_error
       (Strip_mine.apply ~block_size:(i 4) ~new_index:"N" K_lu.point_loop))

(* ---- index-set splitting at a point ---- *)

let at_point_equiv (n, p) =
  (* the paper's own example: split DO I = 1,N at iteration p *)
  let body = [ set1 "A" (v "I") (a1 "A" (v "I") +. a1 "B" (v "I")) ] in
  let l = match do_ "I" (i 1) (v "N") body with Stmt.Loop l -> l | _ -> assert false in
  let split = Index_set_split.at_point l (i p) in
  let kernel : Kernel_def.t =
    {
      name = "axpy";
      description = "";
      block = [ Stmt.Loop l ];
      params = [ "N" ];
      setup =
        (fun env ~bindings ~seed ->
          let n = List.assoc "N" bindings in
          Env.add_farray env "A" [ (1, n) ];
          Env.add_farray env "B" [ (1, n) ];
          let rng = Lcg.create seed in
          Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
          Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0));
      traced = [ "A" ];
      shapes = [];
    }
  in
  Kernel_def.equivalent kernel split ~bindings:[ ("N", n) ] ~seed:3 = Ok ()

(* ---- interchange ---- *)

let rect_interchange () =
  (* DO J / DO I with independent bounds — §2.3's running example. *)
  let nest =
    do_ "J" (i 1) (v "N")
      [ do_ "I" (i 1) (v "M") [ set1 "A" (v "I") (a1 "A" (v "I") +. a1 "B" (v "J")) ] ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  let swapped = ok_or_fail "interchange" (Interchange.rectangular l) in
  check_string "outer index" "I" swapped.index;
  let kernel : Kernel_def.t =
    {
      name = "sum2d";
      description = "";
      block = [ nest ];
      params = [ "N"; "M" ];
      setup =
        (fun env ~bindings ~seed ->
          Env.add_farray env "A" [ (1, List.assoc "M" bindings) ];
          Env.add_farray env "B" [ (1, List.assoc "N" bindings) ];
          let rng = Lcg.create seed in
          Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
          Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0));
      traced = [ "A" ];
      shapes = [];
    }
  in
  (* interchange reorders the (associative-unsafe) accumulation of B(J)
     into A(I): per element the adds happen in the same J order, so the
     result is still exact. *)
  equivalent kernel [ Stmt.Loop swapped ] ~bindings:[ ("N", 7); ("M", 9) ] ~seed:5

let triangular_interchange_bounds () =
  (* DO II = I, I+IS-1 / DO J = II, M  ->  Figure 1's derivation. *)
  let l =
    match
      do_ "II" (v "I") (v "I" +! v "IS" -! i 1)
        [ do_ "J" (v "II") (v "M") [ setf "X" (fc 0.0) ] ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let swapped = ok_or_fail "triangular" (Interchange.triangular_lower l) in
  check_string "outer is J" "J" swapped.index;
  check_string "new outer lo" "I" (Expr.to_string swapped.lo);
  match swapped.body with
  | [ Stmt.Loop inner ] ->
      check_string "inner hi" "MIN(J, I + IS - 1)" (Expr.to_string inner.hi)
  | _ -> Alcotest.fail "shape"

let triangular_equiv (n, is) =
  (* accumulate into distinct cells so any iteration-space error shows *)
  let body = [ set2 "C" (v "II") (v "J") (a2 "C" (v "II") (v "J") +. fc 1.0) ] in
  let nest =
    do_ "II" (i 1) (v "N") [ do_ "J" (v "II") (v "N") body ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  let swapped =
    match Interchange.triangular_lower l with
    | Ok s -> s
    | Error _ -> QCheck2.assume_fail ()
  in
  ignore is;
  let kernel : Kernel_def.t =
    {
      name = "tri";
      description = "";
      block = [ nest ];
      params = [ "N" ];
      setup =
        (fun env ~bindings ~seed ->
          ignore seed;
          let n = List.assoc "N" bindings in
          Env.add_farray env "C" [ (1, n); (1, n) ]);
      traced = [ "C" ];
      shapes = [];
    }
  in
  Kernel_def.equivalent kernel [ Stmt.Loop swapped ] ~bindings:[ ("N", n) ] ~seed:1
  = Ok ()

let triangular_upper_equiv (n, _) =
  let body = [ set2 "C" (v "II") (v "J") (a2 "C" (v "II") (v "J") +. fc 1.0) ] in
  let nest = do_ "II" (i 1) (v "N") [ do_ "J" (i 1) (v "II") body ] in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  let swapped =
    match Interchange.triangular_upper l with
    | Ok s -> s
    | Error _ -> QCheck2.assume_fail ()
  in
  let kernel : Kernel_def.t =
    {
      name = "triu";
      description = "";
      block = [ nest ];
      params = [ "N" ];
      setup =
        (fun env ~bindings ~seed ->
          ignore seed;
          let n = List.assoc "N" bindings in
          Env.add_farray env "C" [ (1, n); (1, n) ]);
      traced = [ "C" ];
      shapes = [];
    }
  in
  Kernel_def.equivalent kernel [ Stmt.Loop swapped ] ~bindings:[ ("N", n) ] ~seed:1
  = Ok ()

(* ---- MIN/MAX splitting ---- *)

let split_minmax_equiv (n1, n2) =
  let n3 = n1 + n2 in
  let ok block =
    Kernel_def.equivalent K_conv.conv block
      ~bindings:[ ("N1", n1); ("N2", n2); ("N3", n3) ]
      ~seed:2
    = Ok ()
  in
  match Split_minmax.remove_all K_conv.conv_loop with
  | Ok block -> ok block
  | Error _ -> false

let aconv_split_equiv (n1, n2) =
  let n3 = n1 + 3 in
  match Split_minmax.remove_all K_conv.aconv_loop with
  | Ok block ->
      Kernel_def.equivalent K_conv.aconv block
        ~bindings:[ ("N1", n1); ("N2", n2); ("N3", n3) ]
        ~seed:2
      = Ok ()
  | Error _ -> false

(* ---- unroll-and-jam ---- *)

let uj_rect_equiv (n, factor) =
  let factor = max 2 factor in
  (* DO J / DO I : A(I) += B(I,J); rectangular UJ on J.  Each A(I) still
     accumulates J in increasing order: exact. *)
  let nest =
    do_ "J" (i 1) (v "N")
      [
        do_ "I" (i 1) (v "N")
          [ set1 "A" (v "I") (a1 "A" (v "I") +. a2 "B" (v "I") (v "J")) ];
      ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  match Unroll_and_jam.rectangular ~factor l with
  | Error _ -> false
  | Ok block ->
      let kernel : Kernel_def.t =
        {
          name = "ujrect";
          description = "";
          block = [ nest ];
          params = [ "N" ];
          setup =
            (fun env ~bindings ~seed ->
              let n = List.assoc "N" bindings in
              Env.add_farray env "A" [ (1, n) ];
              Env.add_farray env "B" [ (1, n); (1, n) ];
              let rng = Lcg.create seed in
              Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0));
          traced = [ "A" ];
          shapes = [];
        }
      in
      Kernel_def.equivalent kernel block ~bindings:[ ("N", n) ] ~seed:7 = Ok ()

let uj_triangular_equiv (n, factor) =
  let factor = max 2 factor in
  (* the aconv upper part: DO I / DO K = I, N1 *)
  let nest =
    do_ "I" (i 0) (v "N3")
      [
        do_ "K" (v "I") (v "N1")
          [ set1 "F3" (v "I") (a1 "F3" (v "I") +. (fv "DT" *. a1 "F1" (v "K"))) ];
      ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  match Unroll_and_jam.triangular ~factor l with
  | Error _ -> false
  | Ok block ->
      let kernel : Kernel_def.t =
        {
          name = "ujtri";
          description = "";
          block = [ nest ];
          params = [ "N1"; "N3" ];
          setup =
            (fun env ~bindings ~seed ->
              let n1 = List.assoc "N1" bindings and n3 = List.assoc "N3" bindings in
              Env.add_farray env "F1" [ (0, max n1 n3) ];
              Env.add_farray env "F3" [ (0, n3) ];
              Env.set_fscalar env "DT" 0.25;
              let rng = Lcg.create seed in
              Env.fill_farray env "F1" (fun _ -> Lcg.float rng 1.0));
          traced = [ "F3" ];
          shapes = [];
        }
      in
      Kernel_def.equivalent kernel block
        ~bindings:[ ("N1", n + 2); ("N3", n) ]
        ~seed:7
      = Ok ()

let uj_rhomboidal_equiv (n, factor) =
  let factor = max 2 factor in
  let n2 = factor + 2 in
  let nest =
    do_ "I" (i 0) (v "N3")
      [
        do_ "K" (v "I") (v "I" +! v "N2")
          [ set1 "F3" (v "I") (a1 "F3" (v "I") +. a1 "F1" (v "K")) ];
      ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  let ctx = Symbolic.assume_ge Symbolic.empty (Affine.var "N2") (Affine.const n2) in
  match Unroll_and_jam.rhomboidal ~ctx ~factor l with
  | Error _ -> false
  | Ok block ->
      let kernel : Kernel_def.t =
        {
          name = "ujrhom";
          description = "";
          block = [ nest ];
          params = [ "N2"; "N3" ];
          setup =
            (fun env ~bindings ~seed ->
              let n2 = List.assoc "N2" bindings and n3 = List.assoc "N3" bindings in
              Env.add_farray env "F1" [ (0, n3 + n2) ];
              Env.add_farray env "F3" [ (0, n3) ];
              let rng = Lcg.create seed in
              Env.fill_farray env "F1" (fun _ -> Lcg.float rng 1.0));
          traced = [ "F3" ];
          shapes = [];
        }
      in
      Kernel_def.equivalent kernel block
        ~bindings:[ ("N2", n2); ("N3", n) ]
        ~seed:7
      = Ok ()

(* ---- scalar replacement ---- *)

let scalar_replacement_dot () =
  (* S = S + A(I)*B(I): S is rank-0 and untouched; the invariant refs here
     are none — instead check the LU-style case. *)
  let l =
    match
      do_ "KK" (v "K") (v "KEND")
        [
          set2 "A" (v "I") (v "J")
            (a2 "A" (v "I") (v "J") -. (a2 "A" (v "I") (v "KK") *. a2 "A" (v "KK") (v "J")));
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let ctx =
    let open Affine in
    let c = Symbolic.assume_ge Symbolic.empty (var "J") (add (var "KEND") (const 1)) in
    let c = Symbolic.assume_ge c (var "I") (add (var "KEND") (const 1)) in
    Symbolic.assume_ge c (var "KEND") (var "K")
  in
  let result = ok_or_fail "scalar replacement" (Scalar_replacement.apply ~ctx l) in
  (* expect load, loop, store *)
  check_int "three statements" 3 (List.length result);
  (match result with
  | [ Stmt.Assign (t, [], Stmt.Ref ("A", _)); Stmt.Loop _; Stmt.Assign ("A", _, Stmt.Fvar t') ]
    ->
      check_string "temp round trip" t t'
  | _ -> Alcotest.fail "unexpected shape");
  (* and A(I,J) must no longer be referenced inside the loop *)
  match result with
  | [ _; Stmt.Loop l'; _ ] ->
      let accs = Ir_util.accesses [ Stmt.Loop l' ] in
      check_bool "invariant ref replaced" true
        (List.for_all
           (fun (a : Ir_util.access) ->
             a.array <> "A"
             || not (List.for_all2 Expr.equal a.subs [ v "I"; v "J" ]))
           accs)
  | _ -> ()

let scalar_replacement_unsafe () =
  (* A(J) invariant but A(I) may alias it: the replacement must refuse. *)
  let l =
    match
      do_ "I" (i 1) (v "N")
        [ set1 "A" (v "I") (a1 "A" (v "J") +. fc 1.0) ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let result = ok_or_fail "apply" (Scalar_replacement.apply ~ctx:Symbolic.empty l) in
  check_int "nothing replaced" 1 (List.length result)

(* ---- scalar expansion ---- *)

let scalar_expansion_cases () =
  let l =
    match
      do_ "J" (i 1) (v "N")
        [ setf "C" (a1 "X" (v "J")); set1 "Y" (v "J") (fv "C" *. fv "C") ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let expanded = ok_or_fail "expansion" (Scalar_expansion.apply ~scalar:"C" ~array_name:"C" l) in
  let accs = Ir_util.accesses [ Stmt.Loop expanded ] in
  check_bool "no rank-0 C left" true
    (List.for_all (fun (a : Ir_util.access) -> a.array <> "C" || a.subs <> []) accs);
  (* live-on-entry scalars refused *)
  let bad =
    match
      do_ "J" (i 1) (v "N")
        [ set1 "Y" (v "J") (fv "C"); setf "C" (a1 "X" (v "J")) ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  check_bool "live-in refused" true
    (Result.is_error (Scalar_expansion.apply ~scalar:"C" ~array_name:"CX" bad))

(* Regression (found by `blockc fuzz`): a write under an IF does not
   dominate reads after the IF — when the guard is false, the read sees
   the value from before the loop, which expansion would rename to an
   uninitialized array element. *)
let scalar_expansion_conditional_write () =
  let guarded_write_then_read =
    match
      do_ "J" (i 1) (v "N")
        [
          if_
            (fne (a1 "G" (i 1)) (fc 0.0))
            [ setf "T" (a1 "A" (i 1)); set1 "A" (i 1) (fv "T" +. a1 "A" (i 1)) ];
          if_ (fge (fv "T") (fc 0.25)) [ set1 "A" (i 1) (a1 "A" (i 2)) ];
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  check_bool "conditionally-defined scalar refused" true
    (Result.is_error
       (Scalar_expansion.apply ~scalar:"T" ~array_name:"TX"
          guarded_write_then_read));
  (* Reads inside the same branch as the write stay legal (the Givens
     driver expands coefficient scalars written under the rotation
     guard). *)
  let write_and_read_same_branch =
    match
      do_ "J" (i 1) (v "N")
        [
          if_
            (fne (a1 "G" (i 1)) (fc 0.0))
            [ setf "T" (a1 "A" (i 1)); set1 "A" (i 1) (fv "T" +. a1 "A" (i 1)) ];
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  check_bool "same-branch use still expands" true
    (Result.is_ok
       (Scalar_expansion.apply ~scalar:"T" ~array_name:"TX"
          write_and_read_same_branch))

(* ---- distribution ---- *)

let distribution_legal () =
  (* two independent statements distribute; reversed order must refuse *)
  let l =
    match
      do_ "I" (i 1) (v "N")
        [
          set1 "A" (v "I") (a1 "X" (v "I"));
          set1 "B" (v "I") (a1 "A" (v "I") +. fc 1.0);
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let ctx = Symbolic.assume_pos Symbolic.empty "N" in
  check_bool "forward order ok" true
    (Result.is_ok (Distribution.apply ~ctx l ~groups:[ [ 0 ]; [ 1 ] ]));
  check_bool "reversed order refused" true
    (Result.is_error (Distribution.apply ~ctx l ~groups:[ [ 1 ]; [ 0 ] ]));
  check_bool "auto succeeds" true (Result.is_ok (Distribution.auto ~ctx l))

let distribution_recurrence () =
  (* A(I) = A(I-1): self recurrence is fine, but splitting a chained pair
     B after A with backward flow A(I+1) must be refused. *)
  let l =
    match
      do_ "I" (i 2) (v "N")
        [
          set1 "A" (v "I") (a1 "B" (v "I" -! i 1));
          set1 "B" (v "I") (a1 "A" (v "I" -! i 1));
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let ctx = Symbolic.assume_pos Symbolic.empty "N" in
  check_bool "mutual recurrence refused" true
    (Result.is_error (Distribution.apply ~ctx l ~groups:[ [ 0 ]; [ 1 ] ]))

(* ---- IF-inspection ---- *)

let if_inspection_guard_safety () =
  (* the guard reads an array the body writes: must refuse *)
  let l =
    match
      do_ "K" (i 1) (v "N")
        [
          if_ (fne (a1 "A" (v "K")) (fc 0.0))
            [ do_ "I" (i 1) (v "N") [ set1 "A" (v "I") (fc 1.0) ] ];
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let names =
    If_inspection.default_names ~prefix:"K" ~used:[ "K"; "I"; "N"; "A" ]
  in
  check_bool "refused" true (Result.is_error (If_inspection.apply ~names l))

(* Regression (found by `blockc fuzz`): the interference check covered
   arrays only.  A computation that writes a scalar the guard reads
   invalidates the inspector's precomputed ranges just the same. *)
let if_inspection_scalar_interference () =
  let l =
    match
      do_ "I" (i 1) (v "N")
        [
          if_
            (fge (fv "T") (fc 0.25))
            [ setf "T" (a1 "A" (i 3)); set1 "A" (i 1) (fv "T" +. a1 "A" (i 1)) ];
        ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  let names =
    If_inspection.default_names ~prefix:"I" ~used:[ "I"; "N"; "A"; "T" ]
  in
  check_bool "guard-read scalar written by computation refused" true
    (Result.is_error (If_inspection.apply ~names l))

let suite =
  ( "transform",
    [
      qcase ~count:40 "strip-mine preserves semantics" gen_size strip_mine_equiv;
      case "strip-mine legality" strip_mine_rejects;
      qcase ~count:40 "index-set split at a point" gen_size at_point_equiv;
      case "rectangular interchange" rect_interchange;
      case "triangular interchange bounds (paper formula)" triangular_interchange_bounds;
      qcase ~count:30 "triangular interchange preserves semantics" gen_size
        triangular_equiv;
      qcase ~count:30 "upper-triangular interchange" gen_size triangular_upper_equiv;
      qcase ~count:30 "conv MIN/MAX removal" gen_size split_minmax_equiv;
      qcase ~count:30 "aconv MIN removal" gen_size aconv_split_equiv;
      qcase ~count:30 "rectangular unroll-and-jam" gen_size uj_rect_equiv;
      qcase ~count:30 "triangular unroll-and-jam" gen_size uj_triangular_equiv;
      qcase ~count:30 "rhomboidal unroll-and-jam" gen_size uj_rhomboidal_equiv;
      case "scalar replacement on the LU update" scalar_replacement_dot;
      case "scalar replacement refuses aliases" scalar_replacement_unsafe;
      case "scalar expansion" scalar_expansion_cases;
      case "scalar expansion: conditional write" scalar_expansion_conditional_write;
      case "distribution legality" distribution_legal;
      case "distribution recurrence" distribution_recurrence;
      case "IF-inspection guard safety" if_inspection_guard_safety;
      case "IF-inspection scalar interference" if_inspection_scalar_interference;
    ] )
