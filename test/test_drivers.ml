open Helpers

(* The end-to-end §5 derivations: golden listings and equivalence sweeps. *)

let fig6_expected =
  "DO K = 1, N - 1, KS\n\
  \  DO KK = K, MIN(K + (KS - 1), N - 1)\n\
  \    DO I = KK + 1, N\n\
  \      A(I, KK) = A(I, KK)/A(KK, KK)\n\
  \    END DO\n\
  \    DO J = KK + 1, MIN(N, K + KS - 1)\n\
  \      DO I = KK + 1, N\n\
  \        A(I, J) = A(I, J) - A(I, KK)*A(KK, J)\n\
  \      END DO\n\
  \    END DO\n\
  \  END DO\n\
  \  DO J = K + KS, N\n\
  \    DO I = K + 1, N\n\
  \      DO KK = K, MIN(I - 1, MIN(K + (KS - 1), N - 1))\n\
  \        A(I, J) = A(I, J) - A(I, KK)*A(KK, J)\n\
  \      END DO\n\
  \    END DO\n\
  \  END DO\n\
   END DO\n"

let block_lu_golden () =
  let { Blocker.result; steps } =
    ok_or_fail "block_lu" (Blocker.block_lu ~block_size_var:"KS" K_lu.point_loop)
  in
  check_string "Figure 6" fig6_expected (Stmt.to_string result);
  Alcotest.(check (list string))
    "derivation steps"
    [ "strip-mine"; "recurrence"; "index-set-split"; "distribute"; "interchange"; "result" ]
    (List.map (fun (s : Blocker.trace_step) -> s.name) steps)

let gen_case =
  QCheck2.Gen.(triple (int_range 1 24) (int_range 1 10) (int_range 0 1000))

let block_lu_equiv (n, ks, seed) =
  let { Blocker.result; _ } =
    Result.get_ok (Blocker.block_lu ~block_size_var:"KS" K_lu.point_loop)
  in
  Kernel_def.equivalent K_lu.kernel [ result ] ~extra:[ ("KS", ks) ]
    ~bindings:[ ("N", n) ] ~seed
  = Ok ()

let block_lu_pivot_equiv (n, ks, seed) =
  let { Blocker.result; _ } =
    Result.get_ok (Blocker.block_lu_pivot ~block_size_var:"KS" K_lu_pivot.point_loop)
  in
  Kernel_def.equivalent K_lu_pivot.kernel [ result ] ~extra:[ ("KS", ks) ]
    ~bindings:[ ("N", n) ] ~seed
  = Ok ()

(* §5.2's point: WITHOUT commutativity knowledge the pivoting kernel's
   distribution is illegal; the non-pivot driver must therefore fail on
   it, and plain distribution of the split body must be refused. *)
let pivot_needs_commutativity () =
  match Blocker.block_lu ~block_size_var:"KS" K_lu_pivot.point_loop with
  | Ok _ -> Alcotest.fail "pivoting LU must not block without commutativity"
  | Error _ -> ()

let givens_equiv (m_extra, n, seed) =
  let m = n + m_extra in
  match Givens_opt.optimize K_givens.point_loop with
  | Error _ -> false
  | Ok ({ result; _ }, names) ->
      let kernel =
        {
          K_givens.kernel with
          Kernel_def.setup =
            (fun env ~bindings ~seed ->
              K_givens.kernel.Kernel_def.setup env ~bindings ~seed;
              let m = List.assoc "M" bindings in
              Env.add_iarray env names.If_inspection.lb [ (1, (m / 2) + 1) ];
              Env.add_iarray env names.If_inspection.ub [ (1, (m / 2) + 1) ];
              Env.add_farray env "C" [ (1, m) ];
              Env.add_farray env "S" [ (1, m) ]);
        }
      in
      Kernel_def.equivalent kernel [ result ]
        ~bindings:[ ("M", m); ("N", n) ]
        ~seed
      = Ok ()

let matmul_if_equiv (n, freq, seed) =
  let entry = Option.get (Blockability.find "matmul") in
  Blockability.verify entry
    ~bindings:[ ("N", n); ("FREQ_PCT", freq * 10) ]
    ~seed
  = Ok ()

let registry_verifies () =
  List.iter
    (fun (e : Blockability.entry) ->
      match (e.blockable, Blockability.verify e) with
      | true, Ok () -> ()
      | true, Error m -> Alcotest.failf "%s: %s" e.name m
      | false, Error _ -> ()
      | false, Ok () ->
          Alcotest.failf "%s: non-blockable entry unexpectedly verified" e.name)
    Blockability.entries

let blocking_reduces_misses () =
  (* the X1 ablation in miniature: on a small cache and a matrix that far
     exceeds it, block LU must miss less than point LU *)
  let entry = Option.get (Blockability.find "lu") in
  match
    Blockability.simulate ~machine:Arch.small_test
      ~bindings:[ ("N", 64); ("KS", 4) ]
      entry
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_bool "same access count" true
        (r.point_stats.accesses = r.transformed_stats.accesses);
      check_bool
        (Printf.sprintf "misses drop (%d -> %d)" r.point_stats.misses
           r.transformed_stats.misses)
        true
        (r.transformed_stats.misses < r.point_stats.misses)

let strip_mine_and_interchange_driver () =
  (* the §2.3 running example as a driver call *)
  let open Builder in
  let nest =
    do_ "J" (i 1) (v "N")
      [ do_ "I" (i 1) (v "M") [ set1 "A" (v "I") (a1 "A" (v "I") +. a1 "B" (v "J")) ] ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  let blocked =
    ok_or_fail "smi"
      (Blocker.strip_mine_and_interchange ~block_size:(Expr.var "JS")
         ~new_index:"JJ" ~levels:1 l)
  in
  check_string "outer stays J" "J" blocked.index;
  match blocked.body with
  | [ Stmt.Loop mid ] -> (
      check_string "middle is I" "I" mid.index;
      match mid.body with
      | [ Stmt.Loop inner ] -> check_string "inner is JJ" "JJ" inner.index
      | _ -> Alcotest.fail "shape")
  | _ -> Alcotest.fail "shape"

let block_trapezoid_equiv (n1, n2, seed) =
  let n2 = n2 + 3 (* rhomboidal regions need N2 >= factor-1 = 3 *) in
  let ctx =
    Symbolic.assume_ge
      (List.fold_left Symbolic.assume_pos Symbolic.empty [ "N1"; "N2"; "N3" ])
      (Affine.var "N2") (Affine.const 3)
  in
  let check loop kernel =
    match Blocker.block_trapezoid ~ctx ~factor:4 loop with
    | Error _ -> false
    | Ok { result; _ } ->
        Kernel_def.equivalent kernel result
          ~bindings:[ ("N1", n1); ("N2", n2); ("N3", n1 + 7) ]
          ~seed
        = Ok ()
  in
  check K_conv.aconv_loop K_conv.aconv && check K_conv.conv_loop K_conv.conv

(* blocking both outer loops of a matmul-style nest: strip-mine-and-
   interchange applied twice gives a 2-D tiled nest, still equivalent *)
let two_level_tiling () =
  let open Builder in
  let nest =
    do_ "J" (i 1) (v "N")
      [
        do_ "K" (i 1) (v "N")
          [
            do_ "I" (i 1) (v "N")
              [ set2 "C" (v "I") (v "J")
                  (a2 "C" (v "I") (v "J") +. (a2 "A" (v "I") (v "K") *. a2 "B" (v "K") (v "J"))) ];
          ];
      ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  (* sink a strip of J past K and I (two levels) *)
  let tiled =
    ok_or_fail "tile J"
      (Blocker.strip_mine_and_interchange ~block_size:(Expr.var "JS")
         ~new_index:"JJ" ~levels:2 l)
  in
  let kernel : Kernel_def.t =
    {
      name = "mm";
      description = "";
      block = [ nest ];
      params = [ "N" ];
      setup =
        (fun env ~bindings ~seed ->
          let n = List.assoc "N" bindings in
          Env.add_farray env "A" [ (1, n); (1, n) ];
          Env.add_farray env "B" [ (1, n); (1, n) ];
          Env.add_farray env "C" [ (1, n); (1, n) ];
          let rng = Lcg.create seed in
          Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
          Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0));
      traced = [ "C" ];
      shapes = [];
    }
  in
  equivalent kernel [ Stmt.Loop tiled ] ~extra:[ ("JS", 3) ]
    ~bindings:[ ("N", 11) ] ~seed:17

(* §8 breadth: the same generic driver blocks triangular solve and
   Cholesky, neither of which the paper studied. *)
let breadth_equiv (n, ks, seed) =
  let check kernel loop =
    match Blocker.block_lu ~block_size_var:"KS" loop with
    | Error _ -> false
    | Ok { result; _ } ->
        Kernel_def.equivalent kernel [ result ] ~extra:[ ("KS", ks) ]
          ~bindings:[ ("N", n) ] ~seed
        = Ok ()
  in
  check K_trisolve.kernel K_trisolve.point_loop
  && check K_cholesky.kernel K_cholesky.point_loop

let suite =
  ( "drivers",
    [
      case "block LU golden listing (Figure 6)" block_lu_golden;
      qcase ~count:40 "block LU equivalence" gen_case block_lu_equiv;
      qcase ~count:25 "block LU with pivoting equivalence" gen_case
        block_lu_pivot_equiv;
      case "pivoting requires commutativity knowledge" pivot_needs_commutativity;
      qcase ~count:25 "Givens optimization equivalence" gen_case givens_equiv;
      qcase ~count:20 "matmul IF-inspection equivalence"
        QCheck2.Gen.(triple (int_range 1 24) (int_range 0 10) (int_range 0 1000))
        matmul_if_equiv;
      case "whole registry verifies" registry_verifies;
      case "blocking reduces simulated misses" blocking_reduces_misses;
      case "strip-mine-and-interchange driver" strip_mine_and_interchange_driver;
      qcase ~count:30 "trapezoid driver (split + shaped UJ)"
        QCheck2.Gen.(triple (int_range 4 25) (int_range 0 20) (int_range 0 999))
        block_trapezoid_equiv;
      case "two-level tiling" two_level_tiling;
      qcase ~count:25 "breadth: trisolve and Cholesky block too" gen_case
        breadth_equiv;
    ] )
