open Helpers
open Linalg

let gen_cfg = QCheck2.Gen.(triple (int_range 1 40) (int_range 1 12) (int_range 0 999))

let lu_variants_exact (n, b, seed) =
  let a0 = random_diag_dominant ~seed n in
  let reference = copy_mat a0 in
  N_lu.point reference;
  List.for_all
    (fun f ->
      let x = copy_mat a0 in
      f x;
      max_abs_diff reference x = 0.0)
    [
      N_lu.sorensen ~block:b; N_lu.blocked ~block:b; N_lu.blocked_opt ~block:b;
      N_lu.recursive ~base:b;
    ]

let lu_pivot_variants_exact (n, b, seed) =
  let a0 = random ~seed n n in
  let reference = copy_mat a0 in
  N_lu_pivot.point reference;
  List.for_all
    (fun f ->
      let x = copy_mat a0 in
      f x;
      max_abs_diff reference x = 0.0)
    [ N_lu_pivot.blocked ~block:b; N_lu_pivot.blocked_opt ~block:b ]

let lu_factors_correct () =
  (* L*U must reconstruct A. *)
  let n = 24 in
  let a0 = random_diag_dominant ~seed:11 n in
  let f = copy_mat a0 in
  N_lu.point f;
  let worst = ref 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      let acc = ref 0.0 in
      for k = 1 to min i j do
        let l_ik = if k = i then 1.0 else if k < i then get f i k else 0.0 in
        let u_kj = if k <= j then get f k j else 0.0 in
        acc := !acc +. (l_ik *. u_kj)
      done;
      let d = Float.abs (!acc -. get a0 i j) in
      if d > !worst then worst := d
    done
  done;
  check_bool (Printf.sprintf "LU reconstructs A (err %.2g)" !worst) true
    (!worst < 1e-10 *. float_of_int n)

let pivot_growth_bounded () =
  (* with partial pivoting all multipliers are <= 1 in magnitude *)
  let n = 30 in
  let f = random ~seed:5 n n in
  N_lu_pivot.point f;
  let ok = ref true in
  for j = 1 to n do
    for i = j + 1 to n do
      if Float.abs (get f i j) > 1.0 +. 1e-12 then ok := false
    done
  done;
  check_bool "multipliers bounded" true !ok

let conv_variants_exact (n1, n2, seed) =
  let s = N_conv.make ~seed ~n1 ~n2 ~n3:(n1 + 5) () in
  N_conv.aconv s;
  let r1 = Array.copy s.f3 in
  N_conv.reset s;
  N_conv.aconv_opt s;
  let ok1 = max_abs_diff_vec r1 s.f3 = 0.0 in
  N_conv.reset s;
  N_conv.conv s;
  let r2 = Array.copy s.f3 in
  N_conv.reset s;
  N_conv.conv_opt s;
  ok1 && max_abs_diff_vec r2 s.f3 = 0.0

let conv_matches_definition () =
  (* direct O(n^2) definition of the convolution sums *)
  let s = N_conv.make ~seed:3 ~n1:15 ~n2:6 ~n3:20 () in
  N_conv.conv s;
  let worst = ref 0.0 in
  for i = 0 to s.n3 do
    let acc = ref 0.0 in
    for k = 0 to s.n1 do
      if i - k >= 0 && i - k <= s.n2 then
        acc := !acc +. (s.dt *. s.f1.(k) *. s.f2.(i - k + s.n2))
    done;
    let d = Float.abs (!acc -. s.f3.(i)) in
    if d > !worst then worst := d
  done;
  check_bool "conv matches definition" true (!worst < 1e-12)

let matmul_variants_exact (n, freq, seed) =
  let freq = freq * 8 in
  let a = random ~seed n n in
  let b = N_matmul.make_b ~seed:(seed + 1) ~n ~freq_pct:freq () in
  let c1 = create n n and c2 = create n n and c3 = create n n in
  N_matmul.original ~a ~b ~c:c1;
  N_matmul.uj ~a ~b ~c:c2;
  N_matmul.uj_if ~a ~b ~c:c3;
  max_abs_diff c1 c2 = 0.0 && max_abs_diff c1 c3 = 0.0

let matmul_matches_dense () =
  let n = 20 in
  let a = random ~seed:9 n n and b = N_matmul.make_b ~seed:10 ~n ~freq_pct:60 () in
  let c = create n n in
  N_matmul.original ~a ~b ~c;
  let worst = ref 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      let acc = ref 0.0 in
      for k = 1 to n do
        acc := !acc +. (get a i k *. get b k j)
      done;
      let d = Float.abs (!acc -. get c i j) in
      if d > !worst then worst := d
    done
  done;
  check_bool "matmul matches dense" true (!worst < 1e-10)

let givens_variants_exact (m_extra, n, seed) =
  let m = n + m_extra in
  let a0 = random ~seed m n in
  let g1 = copy_mat a0 and g2 = copy_mat a0 in
  N_givens.point g1;
  N_givens.optimized g2;
  max_abs_diff g1 g2 = 0.0

let givens_triangularizes () =
  let a0 = random ~seed:21 30 18 in
  let g = copy_mat a0 in
  N_givens.point g;
  let ok = ref true in
  for j = 1 to g.n do
    for i = j + 1 to g.m do
      if Float.abs (get g i j) > 1e-10 then ok := false
    done
  done;
  check_bool "below-diagonal zeroed" true !ok;
  (* rotations preserve the Frobenius norm *)
  check_bool "norm preserved" true
    (Float.abs (frobenius g -. frobenius a0) < 1e-9 *. frobenius a0)

let householder_block_matches_point (m_extra, n, seed) =
  let m = n + m_extra in
  let a0 = random ~seed m n in
  let h1 = copy_mat a0 and h2 = copy_mat a0 in
  ignore (N_householder.point h1);
  ignore (N_householder.blocked ~block:5 h2);
  let r1 = N_householder.r_of h1 and r2 = N_householder.r_of h2 in
  (* block QR reassociates: compare R with a norm-scaled tolerance; the
     rows of R are determined up to sign in general, but both versions use
     the same reflector convention so signs agree. *)
  max_abs_diff r1 r2 < 1e-9 *. (1.0 +. frobenius r1)

let householder_norm_preserved () =
  let a0 = random ~seed:31 40 25 in
  let h = copy_mat a0 in
  ignore (N_householder.blocked ~block:8 h);
  let r = N_householder.r_of h in
  check_bool "orthogonal transform preserves norm" true
    (Float.abs (frobenius r -. frobenius a0) < 1e-9 *. frobenius a0)

let suite =
  ( "native",
    [
      qcase ~count:30 "LU variants bit-identical" gen_cfg lu_variants_exact;
      qcase ~count:30 "pivoting LU variants bit-identical" gen_cfg
        lu_pivot_variants_exact;
      case "LU reconstructs A" lu_factors_correct;
      case "pivot multipliers bounded" pivot_growth_bounded;
      qcase ~count:30 "convolution variants bit-identical" gen_cfg
        conv_variants_exact;
      case "conv matches its definition" conv_matches_definition;
      qcase ~count:30 "matmul variants bit-identical" gen_cfg matmul_variants_exact;
      case "guarded matmul matches dense" matmul_matches_dense;
      qcase ~count:30 "Givens variants bit-identical" gen_cfg givens_variants_exact;
      case "Givens triangularizes and preserves norm" givens_triangularizes;
      qcase ~count:25 "Householder block matches point" gen_cfg
        householder_block_matches_point;
      case "Householder norm preservation" householder_norm_preserved;
    ] )
