open Helpers

(* The observability layer: event/span semantics, sink round-trips,
   decision tracing through the real compiler drivers, metrics, the
   per-array cache statistics, and the bench regression gate. *)

(* Every test that installs a sink must restore the null default —
   alcotest runs the other suites in the same process. *)
let with_memory_sink f =
  let mem, events = Obs.memory () in
  Obs.set_sink mem;
  Fun.protect ~finally:(fun () -> Obs.set_sink Obs.null) (fun () -> f events)

let span_nesting () =
  with_memory_sink @@ fun events ->
  let v =
    Obs.span "outer" (fun () ->
        Obs.instant "mid";
        Obs.span "inner" (fun () -> ());
        7)
  in
  check_int "span returns its body's value" 7 v;
  let evs = events () in
  let tags =
    List.map
      (fun (e : Obs.event) ->
        ( e.name,
          (match e.kind with
          | Obs.Begin -> "B"
          | Obs.End -> "E"
          | Obs.Instant -> "I"),
          e.depth ))
      evs
  in
  Alcotest.(check (list (triple string string int)))
    "emission order and depths"
    [
      ("outer", "B", 0);
      ("mid", "I", 1);
      ("inner", "B", 1);
      ("inner", "E", 1);
      ("outer", "E", 0);
    ]
    tags;
  (* timestamps are non-decreasing *)
  let rec mono = function
    | (a : Obs.event) :: (b :: _ as rest) ->
        check_bool "timestamps non-decreasing" true (a.ts <= b.ts);
        mono rest
    | _ -> ()
  in
  mono evs

let span_exception_closes () =
  with_memory_sink @@ fun events ->
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let evs = events () in
  check_int "Begin and End both emitted" 2 (List.length evs);
  check_bool "End emitted on exception" true
    (match List.rev evs with
    | (e : Obs.event) :: _ -> e.kind = Obs.End
    | [] -> false);
  Obs.instant "after";
  check_bool "depth back to 0 after exception" true
    (match List.rev (events ()) with
    | (e : Obs.event) :: _ -> e.depth = 0
    | [] -> false)

let null_sink_is_off () =
  Obs.set_sink Obs.null;
  check_bool "disabled under null" false (Obs.enabled ());
  (* and the whole event path stays allocation-free: spans just run the
     body, instants return immediately *)
  Obs.span "s" (fun () -> Obs.instant "i");
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Obs.instant "hot"
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "no allocation on disabled instants (%.0f words)" allocated)
    true
    (allocated < 64.0)

let jsonl_round_trip () =
  let path = Filename.temp_file "obs" ".jsonl" in
  let oc = open_out path in
  Obs.set_sink (Obs.jsonl oc);
  Obs.span "phase" ~cat:"driver"
    ~args:[ ("loop", Obs.Str "K"); ("n", Obs.Int 3) ]
    (fun () ->
      Obs.decision ~transform:"t" ~target:"K" ~applied:false ~reason:{|no "x"|}
        ());
  Obs.set_sink Obs.null;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "one JSON object per event" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json_min.parse line with
      | Ok (Json_min.Object kvs) ->
          check_bool "has name" true (List.mem_assoc "name" kvs);
          check_bool "has ts" true (List.mem_assoc "ts" kvs)
      | Ok _ -> Alcotest.fail "event line is not an object"
      | Error m -> Alcotest.failf "unparseable event line: %s" m)
    lines

let chrome_round_trip () =
  let path = Filename.temp_file "obs" ".json" in
  let oc = open_out path in
  Obs.set_sink (Obs.chrome oc);
  Obs.span "phase" (fun () -> Obs.instant "i");
  Obs.flush ();
  Obs.set_sink Obs.null;
  close_out oc;
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Json_min.parse doc with
  | Ok (Json_min.Object kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Json_min.Array evs) ->
          check_int "B, I, E trace events" 3 (List.length evs)
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "chrome trace is not an object"
  | Error m -> Alcotest.failf "unparseable chrome trace: %s" m

(* ---- multi-domain tracing ---- *)

(* Regression: span depth used to be one process-global counter, so a
   worker domain opening a span while the main domain was inside one
   started at depth 1 (or worse, tore the counter).  Depth is now
   domain-local state. *)
let two_domain_depth_isolation () =
  with_memory_sink @@ fun events ->
  let worker_go = Atomic.make false and worker_done = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get worker_go) do
          Domain.cpu_relax ()
        done;
        Obs.span "worker" (fun () -> Obs.instant "w.mid");
        Atomic.set worker_done true)
  in
  Obs.span "main" (fun () ->
      (* release the worker only once this domain is at depth 1 *)
      Atomic.set worker_go true;
      while not (Atomic.get worker_done) do
        Domain.cpu_relax ()
      done;
      Obs.instant "m.mid");
  Domain.join d;
  let evs = events () in
  let find name kind =
    List.find (fun (e : Obs.event) -> e.name = name && e.kind = kind) evs
  in
  let wb = find "worker" Obs.Begin and mb = find "main" Obs.Begin in
  check_int "worker span starts at its own depth 0" 0 wb.depth;
  check_int "worker instant nests to 1" 1 (find "w.mid" Obs.Instant).depth;
  check_int "main instant unaffected by the worker" 1
    (find "m.mid" Obs.Instant).depth;
  check_bool "domains emit on distinct tracks" true (wb.track <> mb.track)

(* Regression: timestamps came from Sys.time (CPU time, ~1ms
   granularity), so back-to-back events got identical stamps and
   sub-millisecond spans rendered as zero-width.  The clock is now the
   real wall clock at microsecond resolution. *)
let wall_clock_advances () =
  with_memory_sink @@ fun events ->
  Obs.instant "t0";
  (* a few hundred microseconds of real work between the two events *)
  let s = String.make 100_000 'x' in
  let acc = ref "" in
  for _ = 1 to 20 do
    acc := Digest.string s
  done;
  ignore !acc;
  Obs.instant "t1";
  match events () with
  | [ a; b ] ->
      check_bool
        (Printf.sprintf "back-to-back events are %d ns apart" (b.ts - a.ts))
        true
        (b.ts - a.ts > 0)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let chrome_multi_domain () =
  let path = Filename.temp_file "obs" ".json" in
  let oc = open_out path in
  Obs.set_sink (Obs.chrome oc);
  let worker () =
    for i = 1 to 10 do
      Obs.span "w.span" (fun () -> Obs.instant ~args:[ ("i", Obs.Int i) ] "w.i")
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  Obs.flush ();
  Obs.set_sink Obs.null;
  close_out oc;
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Json_min.parse doc with
  | Error m -> Alcotest.failf "unparseable chrome trace: %s" m
  | Ok (Json_min.Object kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Json_min.Array evs) ->
          check_int "all 90 events present" 90 (List.length evs);
          let num k ev =
            match ev with
            | Json_min.Object fields -> (
                match List.assoc_opt k fields with
                | Some (Json_min.Number x) -> x
                | _ -> Alcotest.failf "event without numeric %S" k)
            | _ -> Alcotest.fail "trace event is not an object"
          in
          let tids = List.sort_uniq compare (List.map (num "tid") evs) in
          check_bool "at least two domain tracks" true (List.length tids >= 2);
          (* per-track timestamps are non-decreasing in emission order *)
          let last = Hashtbl.create 4 in
          List.iter
            (fun ev ->
              let tid = num "tid" ev and ts = num "ts" ev in
              (match Hashtbl.find_opt last tid with
              | Some prev ->
                  check_bool "per-track ts non-decreasing" true (prev <= ts)
              | None -> ());
              Hashtbl.replace last tid ts)
            evs
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "chrome trace is not an object"

(* ---- decision tracing through the real drivers ---- *)

let decisions events =
  List.filter (fun (e : Obs.event) -> String.equal e.cat "decision") events

let arg_bool k (e : Obs.event) =
  match List.assoc_opt k e.args with Some (Obs.Bool b) -> Some b | _ -> None

let lu_decision_trace () =
  with_memory_sink @@ fun events ->
  let entry = Option.get (Blockability.find "lu") in
  check_bool "lu derives" true (Result.is_ok (Blockability.derive entry));
  let ds = decisions (events ()) in
  let applied name =
    List.exists
      (fun (e : Obs.event) ->
        String.equal e.name name && arg_bool "applied" e = Some true)
      ds
  in
  check_bool "strip-mine applied" true (applied "strip-mine");
  check_bool "index-set-split applied" true (applied "index-set-split");
  check_bool "distribute applied" true (applied "distribute");
  check_bool "interchange applied" true (applied "interchange");
  (* the split evidence names the split loop and point (§ Fig. 3) *)
  check_bool "split evidence recorded" true
    (List.exists
       (fun (e : Obs.event) ->
         String.equal e.name "index-set-split"
         && List.mem_assoc "split_point" e.args
         && List.mem_assoc "split_loop" e.args)
       ds)

let lu_pivot_commutativity_trace () =
  with_memory_sink @@ fun events ->
  let entry = Option.get (Blockability.find "lu_pivot") in
  check_bool "lu_pivot derives" true (Result.is_ok (Blockability.derive entry));
  check_bool "commutativity event emitted (§5.2)" true
    (List.exists
       (fun (e : Obs.event) ->
         String.equal e.name "commutativity"
         && arg_bool "applied" e = Some true)
       (decisions (events ())))

let householder_rejection_trace () =
  with_memory_sink @@ fun events ->
  let entry = Option.get (Blockability.find "householder") in
  check_bool "householder entry is marked non-blockable" false
    entry.Blockability.blockable;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Blockability.derive entry with
  | Ok _ -> Alcotest.fail "householder must not derive (§5.3)"
  | Error m -> check_bool "reason mentions §5.3" true (contains m "5.3"));
  check_bool "rejection decision emitted" true
    (List.exists
       (fun (e : Obs.event) ->
         String.equal e.name "block"
         && arg_bool "applied" e = Some false)
       (decisions (events ())))

(* The point kernel behind the negative result must itself be correct:
   interpreting it has to triangularize A (Householder reflections zero
   the subdiagonal of each processed column). *)
let householder_point_kernel_triangularizes () =
  let m = 10 and n = 7 in
  let env =
    Kernel_def.make_env K_householder.kernel
      ~bindings:[ ("M", m); ("N", n) ]
      ~seed:11
  in
  Exec.run env K_householder.kernel.Kernel_def.block;
  for k = 1 to n do
    for i = k + 1 to m do
      let v = Env.get_f env "A" [ i; k ] in
      if Float.abs v > 1e-9 then
        Alcotest.failf "A(%d,%d) = %g not annihilated" i k v
    done
  done

(* ---- metrics ---- *)

let metrics_basics () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "counter" 5 (Obs.Metrics.count c);
  let h = Obs.Metrics.histogram "test.h" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 900 ];
  check_bool "histogram buckets ascend and sum" true
    (let bs = Obs.Metrics.buckets h in
     List.fold_left (fun acc (_, n) -> acc + n) 0 bs = 4
     && List.sort compare bs = bs);
  let t = Obs.Metrics.timer "test.t" in
  Obs.Metrics.record_ns t 500;
  let v = Obs.Metrics.time t (fun () -> 3) in
  check_int "timer passes value through" 3 v;
  check_int "timer calls" 2 (Obs.Metrics.calls t);
  check_bool "timer total includes both" true (Obs.Metrics.total_ns t >= 500);
  check_bool "snapshot sees all three" true
    (let keys = List.map fst (Obs.Metrics.snapshot ()) in
     List.mem "test.c" keys
     && List.exists (fun k -> String.length k > 6 && String.sub k 0 6 = "test.h") keys
     && List.mem "test.t.ns" keys)

let pool_metrics_recorded () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  let pool = Pool.create ~domains:2 () in
  let acc = Atomic.make 0 in
  Parallel.for_ ~pool ~lo:1 ~hi:1000 (fun s e ->
      for i = s to e do
        ignore i;
        Atomic.incr acc
      done);
  Pool.shutdown pool;
  check_int "work all done" 1000 (Atomic.get acc);
  check_bool "regions counted" true
    (Obs.Metrics.count (Obs.Metrics.counter "pool.regions") >= 1);
  check_bool "chunks counted" true
    (Obs.Metrics.count (Obs.Metrics.counter "par.chunks") >= 2);
  check_bool "chunk sizes observed" true
    (Obs.Metrics.buckets (Obs.Metrics.histogram "par.chunk_size.static") <> []);
  check_bool "per-chunk timer ran" true
    (Obs.Metrics.calls (Obs.Metrics.timer "par.chunk") >= 2)

let histogram_quantiles () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.q" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (i * 1000)
  done;
  check_int "count" 1000 (Obs.Metrics.hist_count h);
  check_int "sum" (1000 * 1001 / 2 * 1000) (Obs.Metrics.hist_sum h);
  check_int "max exact" 1_000_000 (Obs.Metrics.hist_max h);
  (* log-linear buckets: 16 sub-buckets per octave, so a quantile's
     upper bound overshoots its true value by < 1/16 *)
  let p50 = Obs.Metrics.percentile h 0.5 in
  check_bool
    (Printf.sprintf "p50 within a bucket of 500000 (%d)" p50)
    true
    (p50 >= 500_000 && p50 <= 540_000);
  let p99 = Obs.Metrics.percentile h 0.99 in
  check_bool
    (Printf.sprintf "p99 within a bucket of 990000 (%d)" p99)
    true
    (p99 >= 990_000 && p99 <= 1_000_000);
  check_int "p100 clamps to the observed max" 1_000_000
    (Obs.Metrics.percentile h 1.0);
  check_int "empty histogram quantile is 0" 0
    (Obs.Metrics.percentile (Obs.Metrics.histogram "test.q.empty") 0.99)

let recorder_ring () =
  let old_cap = Obs.Recorder.capacity () in
  Fun.protect ~finally:(fun () -> Obs.Recorder.set_capacity old_cap)
  @@ fun () ->
  Obs.Recorder.set_capacity 8;
  (* notes land even with tracing fully disabled *)
  check_bool "tracing is off" false (Obs.enabled ());
  for i = 1 to 20 do
    Obs.Recorder.note ~args:[ ("i", Obs.Int i) ] "r.note"
  done;
  let evs = Obs.Recorder.recent () in
  check_int "ring bounded to capacity" 8 (List.length evs);
  let seq =
    List.map
      (fun (e : Obs.event) ->
        match List.assoc_opt "i" e.args with Some (Obs.Int i) -> i | _ -> -1)
      evs
  in
  Alcotest.(check (list int))
    "keeps the last 8, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    seq;
  check_bool "dump renders a header and lines" true
    (String.length (Obs.Recorder.dump ()) > 0);
  Obs.Recorder.clear ();
  check_int "clear empties the ring" 0 (List.length (Obs.Recorder.recent ()));
  check_bool "dump of an empty ring is empty" true (Obs.Recorder.dump () = "");
  (* the ring as a sink: span traffic mirrors into it, and installing
     it flips [enabled] on without any output channel *)
  Obs.set_sink (Obs.Recorder.sink ());
  Fun.protect
    ~finally:(fun () -> Obs.set_sink Obs.null)
    (fun () ->
      check_bool "recorder sink enables tracing" true (Obs.enabled ());
      Obs.span "r.span" (fun () -> ()));
  let kinds = List.map (fun (e : Obs.event) -> e.kind) (Obs.Recorder.recent ()) in
  check_bool "span Begin/End captured" true (kinds = [ Obs.Begin; Obs.End ]);
  Obs.Recorder.clear ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let prometheus_exposition () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  Obs.Metrics.incr
    (Obs.Metrics.counter
       (Obs.Metrics.labelled "test.errors" [ ("class", "parse") ]));
  Obs.Metrics.incr (Obs.Metrics.counter "test.errors");
  let h = Obs.Metrics.histogram "test.lat.ns" in
  List.iter (Obs.Metrics.observe h) [ 10; 20; 30; 40 ];
  let text = Obs.Metrics.prometheus () in
  let has needle =
    check_bool (Printf.sprintf "exposition has %S" needle) true
      (contains text needle)
  in
  has "blockc_test_errors_total{class=\"parse\"} 1";
  has "\nblockc_test_errors_total 1";
  has "# TYPE blockc_test_lat_ns summary";
  has "blockc_test_lat_ns{quantile=\"0.5\"}";
  has "blockc_test_lat_ns{quantile=\"0.99\"}";
  has "blockc_test_lat_ns_count 4";
  has "blockc_test_lat_ns_sum 100";
  has "# TYPE blockc_test_lat_ns_max gauge";
  (* label sets of one base name share a single TYPE line *)
  let type_lines = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun l ->
         if contains l "# TYPE blockc_test_errors_total" then incr type_lines);
  check_int "one TYPE line for the labelled family" 1 !type_lines

let prometheus_help_lines () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Metrics.reset ();
  Obs.Metrics.incr (Obs.Metrics.counter ~help:"Documented counter." "helpt");
  (* same family, different label set, different help text: first wins *)
  Obs.Metrics.incr
    (Obs.Metrics.counter ~help:"loser"
       (Obs.Metrics.labelled "helpt" [ ("k", "v") ]));
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge ~help:"A documented\nlevel." "helpt.depth")
    3;
  let text = Obs.Metrics.prometheus () in
  let has needle =
    check_bool (Printf.sprintf "exposition has %S" needle) true
      (contains text needle)
  in
  has "# HELP blockc_helpt_total Documented counter.\n\
       # TYPE blockc_helpt_total counter";
  (* newlines in the doc string are flattened to keep the exposition
     parseable, and the _peak suffix family shares the base's text *)
  has "# HELP blockc_helpt_depth A documented level.\n\
       # TYPE blockc_helpt_depth gauge";
  has "# HELP blockc_helpt_depth_peak A documented level.\n\
       # TYPE blockc_helpt_depth_peak gauge";
  check_bool "first help registration wins" false (contains text "loser");
  check_bool "undocumented families stay bare" false
    (contains text "# HELP blockc_test_")

(* ---- flight recorder: private rings and env-sized capacity ---- *)

let mk_ev i =
  {
    Obs.name = Printf.sprintf "p.%d" i;
    cat = "privring";
    kind = Obs.Instant;
    ts = i;
    depth = 0;
    track = 0;
    trace = 0;
    span_id = 0;
    parent = 0;
    args = [];
  }

let recorder_private_rings () =
  let r = Obs.Recorder.create ~capacity:4 () in
  check_int "capacity honoured" 4 (Obs.Recorder.ring_capacity r);
  check_int "fresh ring is empty" 0 (List.length (Obs.Recorder.recent_of r));
  for i = 1 to 10 do
    Obs.Recorder.record_to r (mk_ev i)
  done;
  let names =
    List.map (fun (e : Obs.event) -> e.name) (Obs.Recorder.recent_of r)
  in
  Alcotest.(check (list string))
    "keeps the last 4, oldest first"
    [ "p.7"; "p.8"; "p.9"; "p.10" ]
    names;
  check_bool "global ring untouched by a private ring" true
    (not
       (List.exists
          (fun (e : Obs.event) -> e.cat = "privring")
          (Obs.Recorder.recent ())));
  (* the sink adapter targets this ring only *)
  Obs.set_sink (Obs.Recorder.sink_of r);
  Fun.protect
    ~finally:(fun () -> Obs.set_sink Obs.null)
    (fun () -> Obs.span "p.span" (fun () -> ()));
  check_bool "sink_of mirrors span traffic into the private ring" true
    (List.exists
       (fun (e : Obs.event) -> e.name = "p.span")
       (Obs.Recorder.recent_of r))

let recorder_env_capacity () =
  Unix.putenv "BLOCKC_RECORDER_CAP" "7";
  Fun.protect ~finally:(fun () -> Unix.putenv "BLOCKC_RECORDER_CAP" "")
  @@ fun () ->
  check_int "BLOCKC_RECORDER_CAP sizes fresh rings" 7
    (Obs.Recorder.ring_capacity (Obs.Recorder.create ()));
  Unix.putenv "BLOCKC_RECORDER_CAP" "0";
  check_int "non-positive value falls back to the default" 256
    (Obs.Recorder.ring_capacity (Obs.Recorder.create ()));
  Unix.putenv "BLOCKC_RECORDER_CAP" "nope";
  check_int "garbage falls back to the default" 256
    (Obs.Recorder.ring_capacity (Obs.Recorder.create ()));
  check_int "explicit capacity overrides the env" 3
    (Obs.Recorder.ring_capacity (Obs.Recorder.create ~capacity:3 ()))

(* ---- continuous profiler (span-stack sampler) ---- *)

let span_stack_gated () =
  if Obs.Sampler.running () then Obs.Sampler.stop ();
  Obs.span "sg.off" (fun () ->
      check_bool "no stack maintained while the sampler is off" true
        (Obs.span_stack () = []));
  Obs.Sampler.start ~hz:50. ();
  Fun.protect ~finally:(fun () ->
      Obs.Sampler.stop ();
      Obs.Sampler.reset ())
  @@ fun () ->
  Obs.span "sg.outer" (fun () ->
      Obs.span "sg.inner" (fun () ->
          Alcotest.(check (list string))
            "stack is innermost-first while sampling"
            [ "sg.inner"; "sg.outer" ] (Obs.span_stack ())));
  check_bool "stack unwinds after the spans close" true (Obs.span_stack () = [])

let sampler_folds_spans () =
  if Obs.Sampler.running () then Obs.Sampler.stop ();
  Obs.Sampler.reset ();
  Obs.Sampler.start ~hz:500. ();
  Fun.protect ~finally:(fun () ->
      Obs.Sampler.stop ();
      Obs.Sampler.reset ())
  @@ fun () ->
  check_bool "sampler reports running" true (Obs.Sampler.running ());
  check_bool "rate taken from start" true (Obs.Sampler.hz () = 500.);
  let hit () =
    List.exists
      (fun (stack, _) -> stack = "samp.outer;samp.inner")
      (Obs.Sampler.folded ())
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (hit ())) && Unix.gettimeofday () < deadline do
    Obs.span "samp.outer" (fun () ->
        Obs.span "samp.inner" (fun () -> Unix.sleepf 0.01))
  done;
  check_bool "sampler caught the nested stack, outermost first" true (hit ());
  check_bool "samples counted" true (Obs.Sampler.samples () > 0);
  check_bool "folded rows carry positive counts" true
    (List.for_all (fun (_, n) -> n > 0) (Obs.Sampler.folded ()));
  check_bool "folded text renders the stack row" true
    (contains (Obs.Sampler.folded_text ()) "samp.outer;samp.inner ");
  (* stop first so no tick races the reset check *)
  Obs.Sampler.stop ();
  check_bool "stopped" false (Obs.Sampler.running ());
  Obs.Sampler.reset ();
  check_int "reset drops accumulated samples" 0 (Obs.Sampler.samples ());
  check_bool "reset drops folded rows" true (Obs.Sampler.folded () = [])

(* ---- per-array cache stats ---- *)

let per_array_stats_sum () =
  let entry = Option.get (Blockability.find "lu") in
  match
    Blockability.simulate ~machine:Arch.small_test
      ~bindings:[ ("N", 48); ("KS", 4) ]
      entry
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let sum f l = List.fold_left (fun acc (_, s) -> acc + f s) 0 l in
      check_int "accesses sum to aggregate" r.point_stats.accesses
        (sum (fun (s : Cache.stats) -> s.accesses) r.point_by_array);
      check_int "misses sum to aggregate" r.point_stats.misses
        (sum (fun (s : Cache.stats) -> s.misses) r.point_by_array);
      check_int "transformed accesses sum" r.transformed_stats.accesses
        (sum (fun (s : Cache.stats) -> s.accesses) r.transformed_by_array)

(* ---- bench regression gate ---- *)

let gate_doc rows =
  let tbl =
    Table.create ~title:"t"
      [ ("K", Table.Left); ("Time", Table.Right); ("Speedup", Table.Right) ]
  in
  List.iter
    (fun (k, secs, sp) -> Table.add_row tbl [ k; Table.cell_s secs; Table.cell_f sp ])
    rows;
  match Json_min.parse (Table.json_of_tables [ ("g", tbl) ]) with
  | Ok v -> v
  | Error m -> Alcotest.failf "gate_doc: %s" m

let gate_passes_and_fails () =
  let baseline = gate_doc [ ("lu", 1.0, 1.8); ("mm", 0.004, 1.5) ] in
  (* same timings: passes *)
  (match Bench_gate.compare ~baseline ~current:baseline () with
  | Error m -> Alcotest.fail m
  | Ok v ->
      check_bool "identical run passes" true (Bench_gate.ok v);
      check_int "compared both time cells" 2 v.compared);
  (* artificially slowed table: flagged, with the cell identified *)
  let slowed = gate_doc [ ("lu", 10.0, 1.8); ("mm", 0.004, 1.5) ] in
  (match Bench_gate.compare ~baseline ~current:slowed () with
  | Error m -> Alcotest.fail m
  | Ok v -> (
      check_bool "slowdown flagged" false (Bench_gate.ok v);
      match v.Bench_gate.regressions with
      | [ r ] ->
          check_bool "right row" true (String.equal r.row_label "lu");
          check_bool "ratio is 10x" true (r.ratio > 9.0 && r.ratio < 11.0)
      | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)));
  (* jitter within tolerance (and within slack for the ms cell) *)
  let jitter = gate_doc [ ("lu", 1.4, 1.8); ("mm", 0.005, 1.5) ] in
  match Bench_gate.compare ~baseline ~current:jitter () with
  | Error m -> Alcotest.fail m
  | Ok v -> check_bool "jitter tolerated" true (Bench_gate.ok v)

let gate_structural_drift_warns () =
  let baseline = gate_doc [ ("lu", 1.0, 1.8) ] in
  match
    Bench_gate.compare ~baseline
      ~current:
        (match Json_min.parse {|{"tables":[]}|} with
        | Ok v -> v
        | Error m -> Alcotest.failf "parse: %s" m)
      ()
  with
  | Error m -> Alcotest.fail m
  | Ok v ->
      check_bool "missing table is only a warning" true (Bench_gate.ok v);
      check_int "one warning" 1 (List.length v.Bench_gate.warnings)

let parse_time_cells () =
  let t = Alcotest.(check (option (float 1e-9))) in
  t "seconds" (Some 4.59) (Bench_gate.parse_time_cell "4.59s");
  t "millis" (Some 0.0123) (Bench_gate.parse_time_cell "12.30ms");
  t "micros" (Some 3.1e-6) (Bench_gate.parse_time_cell "3.1us");
  t "nanos" (Some 8.5e-7) (Bench_gate.parse_time_cell "850ns");
  t "ratio is not a time" None (Bench_gate.parse_time_cell "1.80");
  t "label is not a time" None (Bench_gate.parse_time_cell "Aconv");
  t "bare s is not a time" None (Bench_gate.parse_time_cell "s")

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting and ordering" `Quick span_nesting;
      Alcotest.test_case "span closes on exception" `Quick span_exception_closes;
      Alcotest.test_case "null sink: disabled and allocation-free" `Quick
        null_sink_is_off;
      Alcotest.test_case "jsonl sink round-trips through Json_min" `Quick
        jsonl_round_trip;
      Alcotest.test_case "chrome sink emits a trace_event document" `Quick
        chrome_round_trip;
      Alcotest.test_case "span depth is domain-local (2-domain regression)"
        `Quick two_domain_depth_isolation;
      Alcotest.test_case "wall clock gives non-zero event deltas" `Quick
        wall_clock_advances;
      Alcotest.test_case "chrome sink is coherent across domains" `Quick
        chrome_multi_domain;
      Alcotest.test_case "LU derivation leaves a decision trail" `Quick
        lu_decision_trace;
      Alcotest.test_case "LU pivot records commutativity (§5.2)" `Quick
        lu_pivot_commutativity_trace;
      Alcotest.test_case "Householder records its rejection (§5.3)" `Quick
        householder_rejection_trace;
      Alcotest.test_case "Householder point kernel triangularizes" `Quick
        householder_point_kernel_triangularizes;
      Alcotest.test_case "metrics counters/histograms/timers" `Quick
        metrics_basics;
      Alcotest.test_case "pool and chunk metrics recorded" `Quick
        pool_metrics_recorded;
      Alcotest.test_case "histogram quantiles (log-linear buckets)" `Quick
        histogram_quantiles;
      Alcotest.test_case "flight recorder ring semantics" `Quick recorder_ring;
      Alcotest.test_case "prometheus text exposition" `Quick
        prometheus_exposition;
      Alcotest.test_case "prometheus HELP lines from ?help docs" `Quick
        prometheus_help_lines;
      Alcotest.test_case "private recorder rings are independent" `Quick
        recorder_private_rings;
      Alcotest.test_case "BLOCKC_RECORDER_CAP sizes fresh rings" `Quick
        recorder_env_capacity;
      Alcotest.test_case "span stack gated on the sampler" `Quick
        span_stack_gated;
      Alcotest.test_case "sampler folds live span stacks" `Quick
        sampler_folds_spans;
      Alcotest.test_case "per-array cache stats sum to aggregate" `Quick
        per_array_stats_sum;
      Alcotest.test_case "bench gate passes/fails correctly" `Quick
        gate_passes_and_fails;
      Alcotest.test_case "bench gate warns on structural drift" `Quick
        gate_structural_drift_warns;
      Alcotest.test_case "time cell parsing" `Quick parse_time_cells;
    ] )
